//! Golden-counter regression gate.
//!
//! A golden is a checked-in JSON file of `counter name -> u64` captured
//! from a deterministic simulator run. [`assert_matches_golden`] compares a
//! fresh snapshot against the file **exactly** — any drift (changed value,
//! missing counter, new counter) fails loudly with a full diff, because
//! silent counter drift is the main failure mode of GPU simulators.
//!
//! Regenerate intentionally with `VKSIM_BLESS=1 cargo test ...` after a
//! change that is *supposed* to move the counters, and commit the diff so
//! reviewers see exactly which statistics moved.

use crate::json::{parse_flat_u64_object, write_flat_u64_object};
use std::collections::BTreeMap;
use std::path::Path;

/// `true` when `VKSIM_BLESS` is set (to anything but `0`): goldens are
/// rewritten instead of compared.
pub fn blessing() -> bool {
    std::env::var("VKSIM_BLESS").is_ok_and(|v| v != "0")
}

/// Compares `actual` against the golden at `path`, or rewrites the golden
/// when [`blessing`]. Returns the human-readable failure report instead of
/// panicking (used by [`assert_matches_golden`]).
///
/// # Errors
///
/// Returns a diff listing every mismatched, missing, and unexpected
/// counter, or instructions to bless when the golden does not exist yet.
pub fn compare_golden(path: &Path, actual: &BTreeMap<String, u64>) -> Result<(), String> {
    if blessing() {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
        std::fs::write(path, write_flat_u64_object(actual))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!(
            "blessed golden {} ({} counters)",
            path.display(),
            actual.len()
        );
        return Ok(());
    }
    let text = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "golden {} unreadable ({e}).\nIf this is a new scenario, generate it with:\n  \
             VKSIM_BLESS=1 cargo test --offline -p vksim-bench --test golden_counters\n\
             and commit the resulting file.",
            path.display()
        )
    })?;
    let expected = parse_flat_u64_object(&text)
        .map_err(|e| format!("golden {} is corrupt: {e}", path.display()))?;

    let mut diffs = Vec::new();
    for (k, want) in &expected {
        match actual.get(k) {
            None => diffs.push(format!("  missing counter        {k} (golden {want})")),
            Some(got) if got != want => {
                let delta = *got as i128 - *want as i128;
                diffs.push(format!(
                    "  drift                  {k}: golden {want}, actual {got} ({delta:+})"
                ));
            }
            Some(_) => {}
        }
    }
    for k in actual.keys() {
        if !expected.contains_key(k) {
            diffs.push(format!(
                "  unexpected counter     {k} (actual {})",
                actual[k]
            ));
        }
    }
    if diffs.is_empty() {
        return Ok(());
    }
    Err(format!(
        "golden counter drift against {} ({} of {} counters differ):\n{}\n\
         If this change is intentional, re-bless with:\n  \
         VKSIM_BLESS=1 cargo test --offline -p vksim-bench --test golden_counters\n\
         and commit the golden diff.",
        path.display(),
        diffs.len(),
        expected.len().max(actual.len()),
        diffs.join("\n"),
    ))
}

/// Panicking wrapper over [`compare_golden`] for use inside `#[test]`s.
///
/// # Panics
///
/// Panics with the full counter diff on any drift.
pub fn assert_matches_golden(path: impl AsRef<Path>, actual: &BTreeMap<String, u64>) {
    if let Err(report) = compare_golden(path.as_ref(), actual) {
        panic!("{report}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("vksim-testkit-golden-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn counters(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn exact_match_passes() {
        let path = tmp("match.json");
        let m = counters(&[("cycles", 100), ("hits", 7)]);
        std::fs::write(&path, write_flat_u64_object(&m)).unwrap();
        assert!(compare_golden(&path, &m).is_ok());
    }

    #[test]
    fn drift_is_reported_with_delta() {
        let path = tmp("drift.json");
        std::fs::write(&path, write_flat_u64_object(&counters(&[("cycles", 100)]))).unwrap();
        let err = compare_golden(&path, &counters(&[("cycles", 90)])).unwrap_err();
        assert!(err.contains("cycles: golden 100, actual 90 (-10)"), "{err}");
        assert!(
            err.contains("VKSIM_BLESS=1"),
            "must tell the user how to re-bless: {err}"
        );
    }

    #[test]
    fn missing_and_unexpected_counters_reported() {
        let path = tmp("shape.json");
        std::fs::write(
            &path,
            write_flat_u64_object(&counters(&[("a", 1), ("b", 2)])),
        )
        .unwrap();
        let err = compare_golden(&path, &counters(&[("b", 2), ("c", 3)])).unwrap_err();
        assert!(err.contains("missing counter"), "{err}");
        assert!(err.contains("unexpected counter"), "{err}");
        assert!(err.contains('a') && err.contains('c'));
    }

    #[test]
    fn absent_golden_names_bless_command() {
        let err = compare_golden(&tmp("never-written.json"), &counters(&[("x", 1)])).unwrap_err();
        assert!(err.contains("VKSIM_BLESS=1"), "{err}");
    }
}
