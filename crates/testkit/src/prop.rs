//! Minimal property-testing harness (offline `proptest` replacement).
//!
//! A [`Strategy`] knows how to generate values from a [`Pcg32`] stream and
//! how to propose simpler candidates for a failing value (shrinking).
//! [`check`] runs a property over many generated cases; on failure it
//! shrinks within an iteration bound and panics with the minimal failing
//! value plus the exact seed that reproduces the case.
//!
//! Environment knobs:
//!
//! * `VKSIM_PROP_CASES` — cases per property (default 256).
//! * `VKSIM_PROP_SEED` — base seed; case `i` uses `seed + i`, so re-running
//!   with the reported failing seed and `VKSIM_PROP_CASES=1` replays
//!   exactly one case.

use crate::rng::Pcg32;
use std::cell::RefCell;
use std::fmt;
use std::fmt::Debug;

/// Property body result: `Err(message)` marks the case as failing.
pub type TestResult = Result<(), String>;

/// Default base seed (stable across runs for reproducible CI).
pub const DEFAULT_SEED: u64 = 0x5EED_CAFE_F00D_0001;

/// A generator of test values with optional shrinking.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Generates one value from the stream.
    fn generate(&self, rng: &mut Pcg32) -> Self::Value;

    /// Proposes strictly "simpler" candidates for a failing value; an empty
    /// vector ends shrinking. Candidates must stay within the strategy's
    /// own domain.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

// ---------------------------------------------------------------------------
// Numeric range strategies.
// ---------------------------------------------------------------------------

/// Uniform `f32` in `[lo, hi)`. See [`f32_in`].
#[derive(Clone, Copy, Debug)]
pub struct F32Range {
    lo: f32,
    hi: f32,
}

/// Uniform `f32` in `[lo, hi)`; shrinks toward zero (or `lo`).
pub fn f32_in(lo: f32, hi: f32) -> F32Range {
    assert!(lo < hi, "empty f32 range {lo}..{hi}");
    F32Range { lo, hi }
}

impl Strategy for F32Range {
    type Value = f32;

    fn generate(&self, rng: &mut Pcg32) -> f32 {
        rng.f32_range(self.lo, self.hi)
    }

    fn shrink(&self, v: &f32) -> Vec<f32> {
        let mut out = Vec::new();
        let anchor = if (self.lo..self.hi).contains(&0.0) {
            0.0
        } else {
            self.lo
        };
        for cand in [anchor, anchor + (v - anchor) / 2.0] {
            if cand != *v && (self.lo..self.hi).contains(&cand) && !out.contains(&cand) {
                out.push(cand);
            }
        }
        out
    }
}

/// Uniform `f64` in `[lo, hi)`. See [`f64_in`].
#[derive(Clone, Copy, Debug)]
pub struct F64Range {
    lo: f64,
    hi: f64,
}

/// Uniform `f64` in `[lo, hi)`; shrinks toward zero (or `lo`).
pub fn f64_in(lo: f64, hi: f64) -> F64Range {
    assert!(lo < hi, "empty f64 range {lo}..{hi}");
    F64Range { lo, hi }
}

impl Strategy for F64Range {
    type Value = f64;

    fn generate(&self, rng: &mut Pcg32) -> f64 {
        rng.f64_range(self.lo, self.hi)
    }

    fn shrink(&self, v: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        let anchor = if (self.lo..self.hi).contains(&0.0) {
            0.0
        } else {
            self.lo
        };
        for cand in [anchor, anchor + (v - anchor) / 2.0] {
            if cand != *v && (self.lo..self.hi).contains(&cand) && !out.contains(&cand) {
                out.push(cand);
            }
        }
        out
    }
}

/// Uniform `u64` in `[lo, hi)`. See [`u64_in`].
#[derive(Clone, Copy, Debug)]
pub struct U64Range {
    lo: u64,
    hi: u64,
}

/// Uniform `u64` in `[lo, hi)`; shrinks toward `lo`.
pub fn u64_in(lo: u64, hi: u64) -> U64Range {
    assert!(lo < hi, "empty u64 range {lo}..{hi}");
    U64Range { lo, hi }
}

impl Strategy for U64Range {
    type Value = u64;

    fn generate(&self, rng: &mut Pcg32) -> u64 {
        self.lo + rng.u64_below(self.hi - self.lo)
    }

    fn shrink(&self, v: &u64) -> Vec<u64> {
        let mut out = Vec::new();
        for cand in [self.lo, self.lo + (v - self.lo) / 2] {
            if cand != *v && !out.contains(&cand) {
                out.push(cand);
            }
        }
        out
    }
}

/// Uniform `u32` in `[lo, hi)`. See [`u32_in`].
#[derive(Clone, Copy, Debug)]
pub struct U32Range {
    lo: u32,
    hi: u32,
}

/// Uniform `u32` in `[lo, hi)`; shrinks toward `lo`.
pub fn u32_in(lo: u32, hi: u32) -> U32Range {
    assert!(lo < hi, "empty u32 range {lo}..{hi}");
    U32Range { lo, hi }
}

impl Strategy for U32Range {
    type Value = u32;

    fn generate(&self, rng: &mut Pcg32) -> u32 {
        self.lo + rng.u32_below(self.hi - self.lo)
    }

    fn shrink(&self, v: &u32) -> Vec<u32> {
        let mut out = Vec::new();
        for cand in [self.lo, self.lo + (v - self.lo) / 2] {
            if cand != *v && !out.contains(&cand) {
                out.push(cand);
            }
        }
        out
    }
}

/// Uniform `usize` in `[lo, hi)`. See [`usize_in`].
#[derive(Clone, Copy, Debug)]
pub struct UsizeRange {
    lo: usize,
    hi: usize,
}

/// Uniform `usize` in `[lo, hi)`; shrinks toward `lo`.
pub fn usize_in(lo: usize, hi: usize) -> UsizeRange {
    assert!(lo < hi, "empty usize range {lo}..{hi}");
    UsizeRange { lo, hi }
}

impl Strategy for UsizeRange {
    type Value = usize;

    fn generate(&self, rng: &mut Pcg32) -> usize {
        self.lo + rng.u64_below((self.hi - self.lo) as u64) as usize
    }

    fn shrink(&self, v: &usize) -> Vec<usize> {
        let mut out = Vec::new();
        for cand in [self.lo, self.lo + (v - self.lo) / 2] {
            if cand != *v && !out.contains(&cand) {
                out.push(cand);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Combinators.
// ---------------------------------------------------------------------------

/// Preimage-log entries a [`Map`] keeps before evicting the oldest; large
/// enough for a full default run (256 cases) plus a long shrink chain.
const MAP_LOG_CAP: usize = 4096;

/// Maps generated values through a function. See [`map`].
pub struct Map<S: Strategy, T, F> {
    source: S,
    f: F,
    /// `(source, mapped)` pairs observed by `generate` and `shrink`. The
    /// mapping is not invertible in general, so shrinking looks the failing
    /// value up here to recover a preimage, shrinks *that* in the source
    /// domain, and maps the candidates forward — which keeps every shrunk
    /// candidate inside the map's image.
    seen: RefCell<Vec<(S::Value, T)>>,
}

/// Maps a strategy's output through `f`. Shrinking works through the map:
/// failing values are inverted via a log of generated `(source, mapped)`
/// pairs, shrunk in the source domain, and re-mapped, so candidates always
/// stay in the image of `f`.
pub fn map<S, T, F>(source: S, f: F) -> Map<S, T, F>
where
    S: Strategy,
    T: Clone + Debug + PartialEq,
    F: Fn(S::Value) -> T,
{
    Map {
        source,
        f,
        seen: RefCell::new(Vec::new()),
    }
}

impl<S: Strategy, T: Debug, F> fmt::Debug for Map<S, T, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Map")
            .field("seen", &self.seen.borrow().len())
            .finish_non_exhaustive()
    }
}

impl<S, T, F> Map<S, T, F>
where
    S: Strategy,
    T: Clone + Debug + PartialEq,
    F: Fn(S::Value) -> T,
{
    fn record(&self, src: S::Value, mapped: T) {
        let mut seen = self.seen.borrow_mut();
        if seen.len() >= MAP_LOG_CAP {
            seen.remove(0);
        }
        seen.push((src, mapped));
    }
}

impl<S, T, F> Strategy for Map<S, T, F>
where
    S: Strategy,
    T: Clone + Debug + PartialEq,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut Pcg32) -> T {
        let src = self.source.generate(rng);
        let mapped = (self.f)(src.clone());
        self.record(src, mapped.clone());
        mapped
    }

    fn shrink(&self, v: &T) -> Vec<T> {
        // Most recent preimage wins: when several sources map to the same
        // value, the latest is the one the failing case actually used.
        let src = self
            .seen
            .borrow()
            .iter()
            .rev()
            .find(|(_, t)| t == v)
            .map(|(s, _)| s.clone());
        let Some(src) = src else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for cand_src in self.source.shrink(&src) {
            let mapped = (self.f)(cand_src.clone());
            if mapped != *v && !out.contains(&mapped) {
                // Log the candidate so a further shrink step can invert it.
                self.record(cand_src, mapped.clone());
                out.push(mapped);
            }
        }
        out
    }
}

/// Rejects generated values failing a predicate. See [`filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, P> {
    source: S,
    pred: P,
    label: &'static str,
}

/// Retries generation until `pred` holds (bounded at 1000 attempts, then
/// panics naming `label`). Shrink candidates are filtered by the same
/// predicate.
pub fn filter<S, P>(source: S, label: &'static str, pred: P) -> Filter<S, P>
where
    S: Strategy,
    P: Fn(&S::Value) -> bool,
{
    Filter {
        source,
        pred,
        label,
    }
}

impl<S, P> Strategy for Filter<S, P>
where
    S: Strategy,
    P: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut Pcg32) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "filter '{}' rejected 1000 consecutive candidates",
            self.label
        );
    }

    fn shrink(&self, v: &S::Value) -> Vec<S::Value> {
        self.source
            .shrink(v)
            .into_iter()
            .filter(|c| (self.pred)(c))
            .collect()
    }
}

/// `Vec` of values from an element strategy. See [`vec_of`].
#[derive(Clone, Copy, Debug)]
pub struct VecOf<S> {
    elem: S,
    min_len: usize,
    max_len: usize,
}

/// A vector with uniform length in `[min_len, max_len]`. Shrinks first by
/// dropping chunks/elements (down to `min_len`), then by shrinking
/// individual elements.
pub fn vec_of<S: Strategy>(elem: S, min_len: usize, max_len: usize) -> VecOf<S> {
    assert!(
        min_len <= max_len,
        "empty length range {min_len}..={max_len}"
    );
    VecOf {
        elem,
        min_len,
        max_len,
    }
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Pcg32) -> Vec<S::Value> {
        let len = rng.usize_range(self.min_len, self.max_len);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out: Vec<Vec<S::Value>> = Vec::new();
        let n = v.len();
        if n > self.min_len {
            // Halves first (fast length reduction), then single removals.
            let half = n / 2;
            if half >= self.min_len {
                out.push(v[..half].to_vec());
                out.push(v[n - half..].to_vec());
            }
            for i in 0..n.min(8) {
                if n > self.min_len {
                    let mut smaller = v.clone();
                    smaller.remove(i);
                    out.push(smaller);
                }
            }
        }
        // Element-wise shrinking on a bounded prefix.
        for i in 0..n.min(4) {
            for cand in self.elem.shrink(&v[i]).into_iter().take(2) {
                let mut c = v.clone();
                c[i] = cand;
                out.push(c);
            }
        }
        out
    }
}

/// A strategy that always yields `value` (useful as a tuple slot).
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut Pcg32) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($($S:ident / $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut Pcg32) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&v.$idx).into_iter().take(4) {
                        let mut c = v.clone();
                        c.$idx = cand;
                        out.push(c);
                    }
                )+
                out
            }
        }
    };
}

tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

// ---------------------------------------------------------------------------
// Runner.
// ---------------------------------------------------------------------------

/// Runner configuration; [`Config::from_env`] is the default used by
/// [`check`].
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u64,
    /// Iteration bound on the shrink search.
    pub max_shrink_iters: u64,
    /// Base seed; case `i` runs on `seed + i`.
    pub seed: u64,
}

impl Config {
    /// Reads `VKSIM_PROP_CASES` / `VKSIM_PROP_SEED`, falling back to 256
    /// cases on [`DEFAULT_SEED`].
    pub fn from_env() -> Self {
        let cases = std::env::var("VKSIM_PROP_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        let seed = std::env::var("VKSIM_PROP_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        Config {
            cases,
            max_shrink_iters: 1024,
            seed,
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::from_env()
    }
}

/// Runs `property` over cases generated by `strategy` with the environment
/// configuration; panics on the first (shrunk) failure.
pub fn check<S: Strategy>(strategy: &S, property: impl Fn(&S::Value) -> TestResult) {
    check_with(Config::from_env(), strategy, property)
}

/// [`check`] with an explicit [`Config`].
///
/// # Panics
///
/// Panics when a case fails, reporting the original failing value, the
/// shrunk value, the property's error message, and the seed that replays
/// the case.
pub fn check_with<S: Strategy>(
    config: Config,
    strategy: &S,
    property: impl Fn(&S::Value) -> TestResult,
) {
    for case in 0..config.cases {
        let case_seed = config.seed.wrapping_add(case);
        let mut rng = Pcg32::new(case_seed);
        let value = strategy.generate(&mut rng);
        if let Err(msg) = property(&value) {
            let (shrunk, shrunk_msg, iters) =
                shrink_failure(strategy, &property, value.clone(), msg.clone(), config);
            panic!(
                "property failed (case {case} of {cases})\n  \
                 original: {value:?}\n  original error: {msg}\n  \
                 shrunk ({iters} shrink iterations): {shrunk:?}\n  \
                 shrunk error: {shrunk_msg}\n  \
                 replay with: VKSIM_PROP_SEED={case_seed} VKSIM_PROP_CASES=1",
                cases = config.cases,
            );
        }
    }
}

fn shrink_failure<S: Strategy>(
    strategy: &S,
    property: &impl Fn(&S::Value) -> TestResult,
    mut value: S::Value,
    mut msg: String,
    config: Config,
) -> (S::Value, String, u64) {
    let mut iters = 0u64;
    'outer: loop {
        for cand in strategy.shrink(&value) {
            iters += 1;
            if iters > config.max_shrink_iters {
                break 'outer;
            }
            if let Err(m) = property(&cand) {
                value = cand;
                msg = m;
                continue 'outer;
            }
        }
        break;
    }
    (value, msg, iters)
}

/// Asserts a condition inside a property body, returning `Err` with a
/// formatted message (and source location for the bare form) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!($($arg)+));
        }
    };
}

/// Asserts equality inside a property body (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: {a:?} != {b:?} ({}:{})",
                file!(),
                line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($arg:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!($($arg)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> Config {
        Config {
            cases: 64,
            max_shrink_iters: 256,
            seed: DEFAULT_SEED,
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u64;
        let counter = std::cell::Cell::new(0u64);
        check_with(small_config(), &u64_in(0, 100), |_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        count += counter.get();
        assert_eq!(count, 64);
    }

    #[test]
    fn generated_values_respect_ranges() {
        check_with(
            small_config(),
            &(f32_in(-2.0, 2.0), u64_in(5, 10)),
            |&(f, u)| {
                prop_assert!((-2.0..2.0).contains(&f), "f32 {f} out of range");
                prop_assert!((5..10).contains(&u), "u64 {u} out of range");
                Ok(())
            },
        );
    }

    #[test]
    #[should_panic(expected = "replay with")]
    fn failing_property_reports_seed() {
        check_with(small_config(), &u64_in(0, 1000), |&v| {
            prop_assert!(v < 900, "too big: {v}");
            Ok(())
        });
    }

    #[test]
    fn shrinking_minimizes_vec_length() {
        // Failing condition: vec contains an element >= 50. The shrunk
        // counterexample should be much shorter than a typical original.
        let strat = vec_of(u64_in(0, 100), 0, 40);
        let mut caught = None;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check_with(small_config(), &strat, |v| {
                prop_assert!(!v.iter().any(|&x| x >= 50), "has big element");
                Ok(())
            });
        }));
        if let Err(p) = result {
            caught = p.downcast_ref::<String>().cloned();
        }
        let msg = caught.expect("property must fail");
        // The shrunk vector is printed after "shrunk"; a single-element
        // counterexample serializes as "[N]" with no comma.
        let shrunk_part = msg.split("shrink iterations): ").nth(1).unwrap();
        let vec_text = shrunk_part.split('\n').next().unwrap();
        assert!(
            !vec_text.contains(','),
            "expected single-element shrunk vec, got {vec_text}"
        );
    }

    #[test]
    fn filter_rejects_and_shrinks_within_domain() {
        let even = filter(u64_in(0, 1000), "even", |v| v % 2 == 0);
        check_with(small_config(), &even, |&v| {
            prop_assert_eq!(v % 2, 0);
            Ok(())
        });
        // Shrink candidates of an even value stay even.
        for c in even.shrink(&800) {
            assert_eq!(c % 2, 0);
        }
    }

    #[test]
    fn map_composes() {
        let pair = map((f32_in(0.0, 1.0), f32_in(0.0, 1.0)), |(a, b)| a + b);
        check_with(small_config(), &pair, |&s| {
            prop_assert!((0.0..2.0).contains(&s));
            Ok(())
        });
    }

    #[test]
    fn map_shrinks_through_logged_preimage() {
        // Regression: mapped strategies used to return no shrink candidates
        // at all. Doubling is injective, so every candidate must stay even
        // (in the image of the map) and come from shrinking the source.
        let strat = map(u64_in(0, 1000), |v| v * 2);
        let mut rng = Pcg32::new(DEFAULT_SEED);
        let v = strat.generate(&mut rng);
        assert!(v > 0, "seed produced 0; pick another seed for this test");
        let cands = strat.shrink(&v);
        assert!(!cands.is_empty(), "map must shrink generated values");
        for c in &cands {
            assert_eq!(c % 2, 0, "candidate {c} is not in the map image");
            assert!(*c < v, "candidate {c} is not simpler than {v}");
        }
        // A value this strategy never generated has no preimage on record.
        assert!(strat.shrink(&1_999_998).is_empty());
    }

    #[test]
    fn map_shrink_chain_minimizes_and_stays_in_image() {
        // The mapped value carries an invariant (len prefix) that only holds
        // in the image of the map; the shrunk counterexample must keep it,
        // proving every intermediate step was inverted through the log.
        let strat = map(vec_of(u64_in(0, 100), 0, 40), |v| (v.len(), v));
        let property = |v: &(usize, Vec<u64>)| -> TestResult {
            prop_assert!(!v.1.iter().any(|&x| x >= 50), "has big element");
            Ok(())
        };
        let mut seed = DEFAULT_SEED;
        let value = loop {
            let mut rng = Pcg32::new(seed);
            let v = strat.generate(&mut rng);
            if v.1.len() > 2 && property(&v).is_err() {
                break v;
            }
            seed += 1;
        };
        let (shrunk, _msg, _iters) = shrink_failure(
            &strat,
            &property,
            value.clone(),
            "seed".into(),
            small_config(),
        );
        assert_eq!(shrunk.0, shrunk.1.len(), "shrunk value left the map image");
        assert_eq!(
            shrunk.1.len(),
            1,
            "expected a single-element vec, got {shrunk:?}"
        );
        assert!(shrunk.1[0] >= 50, "shrunk value must still fail");
    }

    #[test]
    fn same_seed_generates_same_cases() {
        let strat = vec_of(u64_in(0, 1_000_000), 0, 10);
        let mut first: Vec<Vec<u64>> = Vec::new();
        for case in 0..8 {
            let mut rng = Pcg32::new(DEFAULT_SEED.wrapping_add(case));
            first.push(strat.generate(&mut rng));
        }
        for case in 0..8 {
            let mut rng = Pcg32::new(DEFAULT_SEED.wrapping_add(case));
            assert_eq!(strat.generate(&mut rng), first[case as usize]);
        }
    }
}
