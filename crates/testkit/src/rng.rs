//! Deterministic, seedable PRNG (PCG32, O'Neill 2014).
//!
//! One 64-bit multiplicative congruential state with an output permutation;
//! small, fast, and statistically solid for test-case generation and scene
//! synthesis. Identical seeds produce identical streams on every platform,
//! which is what makes failure seeds reproducible.

/// PCG32: 64-bit state, 32-bit output (XSH-RR variant).
///
/// # Example
///
/// ```
/// use vksim_testkit::Pcg32;
/// let mut a = Pcg32::new(42);
/// let mut b = Pcg32::new(42);
/// assert_eq!(a.next_u32(), b.next_u32());
/// let x = a.f32_range(-1.0, 1.0);
/// assert!((-1.0..1.0).contains(&x));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;
const PCG_DEFAULT_STREAM: u64 = 1442695040888963407;

impl Pcg32 {
    /// Creates a generator from a seed (default stream).
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, PCG_DEFAULT_STREAM)
    }

    /// Creates a generator with an explicit stream selector; distinct
    /// streams are statistically independent even for equal seeds.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Next 32 uniform random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Derives an independent child generator (for splitting a stream into
    /// per-object streams without correlation).
    pub fn split(&mut self) -> Pcg32 {
        let seed = self.next_u64();
        let stream = self.next_u64();
        Pcg32::with_stream(seed, stream)
    }

    /// Uniform in `[0, 1)` with 24 bits of mantissa entropy.
    pub fn f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform in `[0, 1)` with 53 bits of mantissa entropy.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)` (returns `lo` when the range is empty).
    pub fn f32_range(&mut self, lo: f32, hi: f32) -> f32 {
        if hi <= lo {
            return lo;
        }
        lo + self.f32() * (hi - lo)
    }

    /// Uniform in `[lo, hi)` (returns `lo` when the range is empty).
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + self.f64() * (hi - lo)
    }

    /// Uniform in `[0, n)` via Lemire rejection (unbiased); `n = 0` yields 0.
    pub fn u32_below(&mut self, n: u32) -> u32 {
        if n == 0 {
            return 0;
        }
        // Lemire's multiply-shift with rejection of the biased low zone.
        let mut m = self.next_u32() as u64 * n as u64;
        let mut low = m as u32;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                m = self.next_u32() as u64 * n as u64;
                low = m as u32;
            }
        }
        (m >> 32) as u32
    }

    /// Uniform in `[0, n)`; `n = 0` yields 0.
    pub fn u64_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Rejection sampling over the largest multiple of n below 2^64.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform in `[lo, hi]` (inclusive).
    pub fn u64_range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.u64_below(hi - lo + 1)
    }

    /// Uniform in `[lo, hi]` (inclusive).
    pub fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_range(lo as u64, hi as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bool_with(&mut self, p: f64) -> bool {
        (self.f64()) < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.u64_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniform element (`None` on an empty slice).
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.u64_below(xs.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Pcg32::new(7);
        let mut b = Pcg32::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = Pcg32::new(1);
        let mut b = Pcg32::new(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "neighbouring seeds must decorrelate");
    }

    #[test]
    fn pcg_reference_vector() {
        // pcg32_srandom(42, 54) first outputs from the PCG reference
        // implementation (pcg32-demo).
        let mut r = Pcg32::with_stream(42, 54);
        let expected: [u32; 6] = [
            0xa15c02b7, 0x7b47f409, 0xba1d3330, 0x83d2f293, 0xbfa4784b, 0xcbed606e,
        ];
        for e in expected {
            assert_eq!(r.next_u32(), e);
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = Pcg32::new(3);
        for _ in 0..1000 {
            let f = r.f32();
            assert!((0.0..1.0).contains(&f));
            let d = r.f64();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Pcg32::new(4);
        for _ in 0..1000 {
            let x = r.f32_range(-5.0, 5.0);
            assert!((-5.0..5.0).contains(&x));
            let u = r.u64_range(10, 20);
            assert!((10..=20).contains(&u));
            let b = r.u32_below(7);
            assert!(b < 7);
        }
        assert_eq!(r.u64_below(0), 0);
        assert_eq!(r.f32_range(2.0, 2.0), 2.0);
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Pcg32::new(5);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.u64_below(8) as usize] += 1;
        }
        for b in buckets {
            assert!(
                (700..1300).contains(&b),
                "bucket count {b} far from uniform"
            );
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Pcg32::new(6);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn split_streams_decorrelate() {
        let mut parent = Pcg32::new(9);
        let mut a = parent.split();
        let mut b = parent.split();
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }
}
