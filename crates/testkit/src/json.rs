//! The tiny JSON subset the testkit needs: string escaping for the bench
//! writer, flat `{"name": integer, ...}` objects for golden-counter
//! files, and a small general [`JsonValue`] reader for validating
//! structured test artifacts (the Chrome trace export). The flat-object
//! path stays integer-only on purpose — goldens must stay trivially
//! diffable and lossless for `u64` (no float round-trip).

use std::collections::BTreeMap;

/// Escapes a string for embedding in a JSON document (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes a flat `name -> u64` map as a pretty, stable JSON object
/// (keys in name order, one per line — the golden-file format).
pub fn write_flat_u64_object(map: &BTreeMap<String, u64>) -> String {
    let mut out = String::from("{\n");
    let mut first = true;
    for (k, v) in map {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!("  \"{}\": {}", escape(k), v));
    }
    out.push_str("\n}\n");
    out
}

/// Parses a flat JSON object of string keys and unsigned-integer values.
///
/// # Errors
///
/// Returns a message naming the offending byte offset for anything outside
/// the golden-file subset (nesting, floats, negative numbers, trailing
/// garbage).
pub fn parse_flat_u64_object(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_u64()?;
            if map.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate key '{key}'"));
            }
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => {
                    return Err(format!(
                        "expected ',' or '}}', got {other:?} at byte {}",
                        p.pos
                    ))
                }
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(map)
}

/// A parsed general JSON value. Numbers are `f64` (fine for validation:
/// every integer a trace emits is well below 2^53). Objects preserve key
/// order as a `Vec` so assertions can check emission order.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in document order (duplicate keys are rejected).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer, if whole and in range.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53)).then_some(n as u64)
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document into a [`JsonValue`].
///
/// # Errors
///
/// Returns a message naming the offending byte offset for malformed
/// documents, duplicate object keys, or trailing garbage.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!(
                "expected '{}', got {other:?} at byte {}",
                want as char, self.pos
            )),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + (d as char).to_digit(16).ok_or("bad \\u escape digit")?;
                        }
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    other => return Err(format!("unsupported escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|e| format!("bad UTF-8 in string: {e}"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                let mut members: Vec<(String, JsonValue)> = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    if members.iter().any(|(k, _)| *k == key) {
                        return Err(format!("duplicate key '{key}'"));
                    }
                    members.push((key, value));
                    self.skip_ws();
                    match self.next() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(JsonValue::Object(members)),
                        other => {
                            return Err(format!(
                                "expected ',' or '}}', got {other:?} at byte {}",
                                self.pos
                            ))
                        }
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.next() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(JsonValue::Array(items)),
                        other => {
                            return Err(format!(
                                "expected ',' or ']', got {other:?} at byte {}",
                                self.pos
                            ))
                        }
                    }
                }
            }
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn parse_literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
        };
        digits(self);
        if self.peek() == Some(b'.') {
            self.pos += 1;
            digits(self);
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            digits(self);
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse()
            .map(JsonValue::Number)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn parse_u64(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected unsigned integer at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|e| format!("integer out of u64 range at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut m = BTreeMap::new();
        m.insert("gpu.cycles".to_string(), 123456u64);
        m.insert("l1.shader_load.hit".to_string(), 0u64);
        m.insert("weird \"key\"\n".to_string(), u64::MAX);
        let text = write_flat_u64_object(&m);
        assert_eq!(parse_flat_u64_object(&text).unwrap(), m);
    }

    #[test]
    fn empty_object() {
        assert!(parse_flat_u64_object("{}").unwrap().is_empty());
        assert!(parse_flat_u64_object(" { } ").unwrap().is_empty());
    }

    #[test]
    fn u64_max_is_lossless() {
        let text = format!("{{\"x\": {}}}", u64::MAX);
        assert_eq!(parse_flat_u64_object(&text).unwrap()["x"], u64::MAX);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_flat_u64_object("{\"a\": 1} extra").is_err());
        assert!(parse_flat_u64_object("{\"a\": -1}").is_err());
        assert!(parse_flat_u64_object("{\"a\": 1.5}").is_err());
        assert!(parse_flat_u64_object("{\"a\": 1, \"a\": 2}").is_err());
        assert!(parse_flat_u64_object("{\"a\" 1}").is_err());
    }

    #[test]
    fn general_value_parser() {
        let doc = r#"{"traceEvents": [{"ph": "B", "ts": 1.5, "pid": 0, "ok": true},
                       {"neg": -2e3, "nothing": null, "list": []}], "other": {}}"#;
        let v = parse_json(doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("B"));
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(events[0].get("pid").unwrap().as_u64(), Some(0));
        assert_eq!(events[0].get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(events[1].get("neg").unwrap().as_f64(), Some(-2000.0));
        assert_eq!(events[1].get("nothing"), Some(&JsonValue::Null));
        assert_eq!(events[1].get("list").unwrap().as_array(), Some(&[][..]));
        assert_eq!(v.get("other"), Some(&JsonValue::Object(vec![])));
    }

    #[test]
    fn general_parser_rejects_malformed() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("truth").is_err());
        assert!(parse_json("{\"a\": 1} x").is_err());
        assert!(parse_json("{\"a\": 1, \"a\": 2}").is_err());
    }

    #[test]
    fn as_u64_bounds() {
        assert_eq!(
            parse_json("9007199254740992").unwrap().as_u64(),
            Some(1 << 53)
        );
        assert_eq!(parse_json("1.5").unwrap().as_u64(), None);
        assert_eq!(parse_json("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn output_is_sorted_and_stable() {
        let mut m = BTreeMap::new();
        m.insert("zeta".to_string(), 1);
        m.insert("alpha".to_string(), 2);
        let text = write_flat_u64_object(&m);
        let alpha = text.find("alpha").unwrap();
        let zeta = text.find("zeta").unwrap();
        assert!(alpha < zeta);
        assert_eq!(text, write_flat_u64_object(&m));
    }
}
