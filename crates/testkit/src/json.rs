//! The tiny JSON subset the testkit needs: string escaping for the bench
//! writer, and flat `{"name": integer, ...}` objects for golden-counter
//! files. Not a general JSON library on purpose — goldens must stay
//! trivially diffable and lossless for `u64` (no float round-trip).

use std::collections::BTreeMap;

/// Escapes a string for embedding in a JSON document (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes a flat `name -> u64` map as a pretty, stable JSON object
/// (keys in name order, one per line — the golden-file format).
pub fn write_flat_u64_object(map: &BTreeMap<String, u64>) -> String {
    let mut out = String::from("{\n");
    let mut first = true;
    for (k, v) in map {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!("  \"{}\": {}", escape(k), v));
    }
    out.push_str("\n}\n");
    out
}

/// Parses a flat JSON object of string keys and unsigned-integer values.
///
/// # Errors
///
/// Returns a message naming the offending byte offset for anything outside
/// the golden-file subset (nesting, floats, negative numbers, trailing
/// garbage).
pub fn parse_flat_u64_object(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_u64()?;
            if map.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate key '{key}'"));
            }
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => {
                    return Err(format!(
                        "expected ',' or '}}', got {other:?} at byte {}",
                        p.pos
                    ))
                }
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(map)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!(
                "expected '{}', got {other:?} at byte {}",
                want as char, self.pos
            )),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + (d as char).to_digit(16).ok_or("bad \\u escape digit")?;
                        }
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    other => return Err(format!("unsupported escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|e| format!("bad UTF-8 in string: {e}"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_u64(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected unsigned integer at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|e| format!("integer out of u64 range at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut m = BTreeMap::new();
        m.insert("gpu.cycles".to_string(), 123456u64);
        m.insert("l1.shader_load.hit".to_string(), 0u64);
        m.insert("weird \"key\"\n".to_string(), u64::MAX);
        let text = write_flat_u64_object(&m);
        assert_eq!(parse_flat_u64_object(&text).unwrap(), m);
    }

    #[test]
    fn empty_object() {
        assert!(parse_flat_u64_object("{}").unwrap().is_empty());
        assert!(parse_flat_u64_object(" { } ").unwrap().is_empty());
    }

    #[test]
    fn u64_max_is_lossless() {
        let text = format!("{{\"x\": {}}}", u64::MAX);
        assert_eq!(parse_flat_u64_object(&text).unwrap()["x"], u64::MAX);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_flat_u64_object("{\"a\": 1} extra").is_err());
        assert!(parse_flat_u64_object("{\"a\": -1}").is_err());
        assert!(parse_flat_u64_object("{\"a\": 1.5}").is_err());
        assert!(parse_flat_u64_object("{\"a\": 1, \"a\": 2}").is_err());
        assert!(parse_flat_u64_object("{\"a\" 1}").is_err());
    }

    #[test]
    fn output_is_sorted_and_stable() {
        let mut m = BTreeMap::new();
        m.insert("zeta".to_string(), 1);
        m.insert("alpha".to_string(), 2);
        let text = write_flat_u64_object(&m);
        let alpha = text.find("alpha").unwrap();
        let zeta = text.find("zeta").unwrap();
        assert!(alpha < zeta);
        assert_eq!(text, write_flat_u64_object(&m));
    }
}
