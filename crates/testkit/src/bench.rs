//! Micro-benchmark harness (offline `criterion` replacement for
//! `harness = false` bench targets).
//!
//! Each measurement runs a warmup, calibrates an inner iteration count so a
//! sample lasts at least ~1 ms, takes N timed samples, and reports the
//! median and the median absolute deviation (MAD) — robust statistics that
//! do not assume Gaussian noise. Results print as a table and are written
//! to `BENCH_<suite>.json` for machine diffing between PRs.
//!
//! Environment knobs:
//!
//! * `VKSIM_BENCH_QUICK` — smoke mode (1 warmup, 3 samples) for CI.
//! * `VKSIM_BENCH_WARMUP` / `VKSIM_BENCH_SAMPLES` — explicit overrides.
//! * `VKSIM_BENCH_DIR` — output directory for the JSON (default `.`).
//! * `VKSIM_BENCH_BASELINE` — path to a previously written
//!   `BENCH_<suite>.json`; [`Bench::finish`] compares each median against
//!   it and exits nonzero on a regression beyond the threshold.
//! * `VKSIM_BENCH_MAX_REGRESSION` — regression threshold in percent
//!   (default 10).

use crate::json::escape;
use std::io::Write;
use std::time::Instant;

/// One benchmark's robust timing summary.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark id (`group/name` style).
    pub name: String,
    /// Median wall time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Median absolute deviation of the per-iteration samples.
    pub mad_ns: f64,
    /// Calibrated inner iterations per sample.
    pub inner_iters: u64,
    /// Raw per-iteration sample times, nanoseconds.
    pub samples_ns: Vec<f64>,
}

/// A benchmark suite: measure with [`Bench::bench`], then [`Bench::finish`]
/// to print the table and write `BENCH_<suite>.json`.
///
/// # Example
///
/// ```no_run
/// use vksim_testkit::{black_box, Bench};
/// let mut b = Bench::new("example");
/// b.bench("sum_1k", || black_box((0..1000u64).sum::<u64>()));
/// b.finish();
/// ```
pub struct Bench {
    suite: String,
    warmup: u64,
    samples: u64,
    results: Vec<BenchResult>,
}

impl Bench {
    /// Creates a suite, reading the `VKSIM_BENCH_*` environment knobs.
    pub fn new(suite: &str) -> Self {
        let quick = std::env::var("VKSIM_BENCH_QUICK").is_ok_and(|v| v != "0");
        let warmup = env_u64("VKSIM_BENCH_WARMUP").unwrap_or(if quick { 1 } else { 3 });
        let samples = env_u64("VKSIM_BENCH_SAMPLES").unwrap_or(if quick { 3 } else { 10 });
        eprintln!("bench suite '{suite}' (warmup {warmup}, samples {samples})");
        Bench {
            suite: suite.to_string(),
            warmup,
            samples: samples.max(1),
            results: Vec::new(),
        }
    }

    /// Measures `f`, recording a robust per-iteration time. The closure's
    /// return value is passed through [`black_box`](crate::black_box) so
    /// the computation cannot be optimized away.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) {
        for _ in 0..self.warmup {
            crate::black_box(f());
        }
        // Calibrate: target >= ~1 ms per sample so Instant resolution noise
        // stays below a tenth of a percent.
        let t0 = Instant::now();
        crate::black_box(f());
        let est_ns = t0.elapsed().as_nanos().max(1) as u64;
        let inner_iters = (1_000_000 / est_ns).clamp(1, 100_000);

        let mut samples_ns = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..inner_iters {
                crate::black_box(f());
            }
            samples_ns.push(t0.elapsed().as_nanos() as f64 / inner_iters as f64);
        }
        let median_ns = median(&samples_ns);
        let deviations: Vec<f64> = samples_ns.iter().map(|s| (s - median_ns).abs()).collect();
        let mad_ns = median(&deviations);
        println!(
            "{:<40} {:>14}  ± {:>12}  ({} samples × {} iters)",
            format!("{}/{}", self.suite, name),
            fmt_ns(median_ns),
            fmt_ns(mad_ns),
            samples_ns.len(),
            inner_iters,
        );
        self.results.push(BenchResult {
            name: name.to_string(),
            median_ns,
            mad_ns,
            inner_iters,
            samples_ns,
        });
    }

    /// Prints the summary and writes `BENCH_<suite>.json` into
    /// `VKSIM_BENCH_DIR` (default: the current directory).
    ///
    /// When `VKSIM_BENCH_BASELINE` names a baseline file, also compares
    /// every median against it and terminates the process with exit code 1
    /// if any benchmark regressed by more than `VKSIM_BENCH_MAX_REGRESSION`
    /// percent (default 10) — the regression gate for CI.
    pub fn finish(self) {
        let dir = std::env::var("VKSIM_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.suite));
        let json = self.to_json();
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
            Ok(()) => eprintln!("bench suite '{}' -> {}", self.suite, path.display()),
            Err(e) => eprintln!(
                "bench suite '{}': failed to write {}: {e}",
                self.suite,
                path.display()
            ),
        }
        if let Ok(baseline_path) = std::env::var("VKSIM_BENCH_BASELINE") {
            let max_pct = std::env::var("VKSIM_BENCH_MAX_REGRESSION")
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .unwrap_or(10.0);
            let baseline = match std::fs::read_to_string(&baseline_path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!(
                        "bench suite '{}': cannot read baseline {baseline_path}: {e}",
                        self.suite
                    );
                    std::process::exit(1);
                }
            };
            let regressions = self.regressions_vs(&baseline, max_pct);
            if regressions.is_empty() {
                eprintln!(
                    "bench suite '{}': no regressions beyond {max_pct}% vs {baseline_path}",
                    self.suite
                );
            } else {
                for r in &regressions {
                    eprintln!("REGRESSION: {r}");
                }
                eprintln!(
                    "bench suite '{}': {} regression(s) beyond {max_pct}% vs {baseline_path}",
                    self.suite,
                    regressions.len()
                );
                std::process::exit(1);
            }
        }
    }

    /// Compares each result's median against `baseline` (a prior
    /// `BENCH_<suite>.json`); returns one message per benchmark regressed by
    /// more than `max_pct` percent. Benchmarks absent from the baseline are
    /// reported to stderr and skipped — a new benchmark is not a regression.
    fn regressions_vs(&self, baseline: &str, max_pct: f64) -> Vec<String> {
        let base = parse_medians(baseline);
        let mut out = Vec::new();
        for r in &self.results {
            let key = escape(&r.name);
            match base.iter().find(|(n, _)| *n == key) {
                Some((_, base_ns)) if *base_ns > 0.0 => {
                    let delta_pct = (r.median_ns - base_ns) / base_ns * 100.0;
                    eprintln!(
                        "bench compare {}/{}: {} vs baseline {} ({delta_pct:+.1}%)",
                        self.suite,
                        r.name,
                        fmt_ns(r.median_ns),
                        fmt_ns(*base_ns),
                    );
                    if delta_pct > max_pct {
                        out.push(format!(
                            "{}/{} regressed {delta_pct:+.1}% ({} -> {}, limit {max_pct}%)",
                            self.suite,
                            r.name,
                            fmt_ns(*base_ns),
                            fmt_ns(r.median_ns),
                        ));
                    }
                }
                _ => eprintln!(
                    "bench compare {}/{}: no baseline entry, skipped",
                    self.suite, r.name
                ),
            }
        }
        out
    }

    fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"suite\": \"{}\",\n  \"results\": [\n",
            escape(&self.suite)
        ));
        for (i, r) in self.results.iter().enumerate() {
            let samples: Vec<String> = r.samples_ns.iter().map(|s| format!("{s:.1}")).collect();
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"mad_ns\": {:.1}, \
                 \"inner_iters\": {}, \"samples_ns\": [{}]}}{}\n",
                escape(&r.name),
                r.median_ns,
                r.mad_ns,
                r.inner_iters,
                samples.join(", "),
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|s| s.parse().ok())
}

/// Extracts `(escaped name, median_ns)` pairs from a `BENCH_<suite>.json`
/// written by this harness — a line scanner over our own fixed layout, not a
/// general JSON parser. Names stay in their escaped form; callers compare
/// against [`escape`]d names.
fn parse_medians(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(rest) = line.trim_start().strip_prefix("{\"name\": \"") else {
            continue;
        };
        let Some(end) = rest.find("\", ") else {
            continue;
        };
        let name = rest[..end].to_string();
        let Some(tail) = rest[end..].split("\"median_ns\": ").nth(1) else {
            continue;
        };
        let median = tail
            .split([',', '}'])
            .next()
            .and_then(|s| s.trim().parse::<f64>().ok());
        if let Some(m) = median {
            out.push((name, m));
        }
    }
    out
}

fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn bench_records_results() {
        std::env::set_var("VKSIM_BENCH_QUICK", "1");
        let mut b = Bench::new("selftest");
        b.bench("noop", || 1 + 1);
        assert_eq!(b.results.len(), 1);
        let r = &b.results[0];
        assert!(r.median_ns >= 0.0);
        assert!(!r.samples_ns.is_empty());
        assert!(r.inner_iters >= 1);
        let json = b.to_json();
        assert!(json.contains("\"suite\": \"selftest\""));
        assert!(json.contains("\"name\": \"noop\""));
    }

    #[test]
    fn json_well_formed_for_multiple_results() {
        std::env::set_var("VKSIM_BENCH_QUICK", "1");
        let mut b = Bench::new("multi");
        b.bench("a", || 0u64);
        b.bench("b", || 0u64);
        let json = b.to_json();
        // Comma between entries, none after the last.
        assert_eq!(json.matches("{\"name\":").count(), 2);
        assert!(json.contains("},\n"));
        assert!(!json.contains("}],"));
    }

    /// A suite with hand-planted medians (no timing noise in tests).
    fn synthetic(suite: &str, medians: &[(&str, f64)]) -> Bench {
        Bench {
            suite: suite.to_string(),
            warmup: 0,
            samples: 1,
            results: medians
                .iter()
                .map(|&(name, median_ns)| BenchResult {
                    name: name.to_string(),
                    median_ns,
                    mad_ns: 0.0,
                    inner_iters: 1,
                    samples_ns: vec![median_ns],
                })
                .collect(),
        }
    }

    #[test]
    fn parse_medians_roundtrips_own_json() {
        let b = synthetic("rt", &[("trace", 1234.5), ("build", 67.0)]);
        let parsed = parse_medians(&b.to_json());
        assert_eq!(
            parsed,
            vec![("trace".to_string(), 1234.5), ("build".to_string(), 67.0)]
        );
    }

    #[test]
    fn regression_beyond_threshold_is_flagged() {
        let baseline = synthetic("s", &[("fast", 100.0), ("slow", 1000.0)]).to_json();
        // "fast" regressed 50%, "slow" only 5%.
        let current = synthetic("s", &[("fast", 150.0), ("slow", 1050.0)]);
        let regs = current.regressions_vs(&baseline, 10.0);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("s/fast"), "{regs:?}");
        // A looser threshold lets both pass.
        assert!(current.regressions_vs(&baseline, 60.0).is_empty());
    }

    #[test]
    fn improvements_and_new_benchmarks_are_not_regressions() {
        let baseline = synthetic("s", &[("a", 100.0)]).to_json();
        let current = synthetic("s", &[("a", 60.0), ("brand_new", 500.0)]);
        assert!(current.regressions_vs(&baseline, 10.0).is_empty());
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert!(fmt_ns(1500.0).ends_with("µs"));
        assert!(fmt_ns(2.5e6).ends_with("ms"));
        assert!(fmt_ns(3.0e9).ends_with(" s"));
    }
}
