//! Micro-benchmark harness (offline `criterion` replacement for
//! `harness = false` bench targets).
//!
//! Each measurement runs a warmup, calibrates an inner iteration count so a
//! sample lasts at least ~1 ms, takes N timed samples, and reports the
//! median and the median absolute deviation (MAD) — robust statistics that
//! do not assume Gaussian noise. Results print as a table and are written
//! to `BENCH_<suite>.json` for machine diffing between PRs.
//!
//! Environment knobs:
//!
//! * `VKSIM_BENCH_QUICK` — smoke mode (1 warmup, 3 samples) for CI.
//! * `VKSIM_BENCH_WARMUP` / `VKSIM_BENCH_SAMPLES` — explicit overrides.
//! * `VKSIM_BENCH_DIR` — output directory for the JSON (default `.`).

use crate::json::escape;
use std::io::Write;
use std::time::Instant;

/// One benchmark's robust timing summary.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark id (`group/name` style).
    pub name: String,
    /// Median wall time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Median absolute deviation of the per-iteration samples.
    pub mad_ns: f64,
    /// Calibrated inner iterations per sample.
    pub inner_iters: u64,
    /// Raw per-iteration sample times, nanoseconds.
    pub samples_ns: Vec<f64>,
}

/// A benchmark suite: measure with [`Bench::bench`], then [`Bench::finish`]
/// to print the table and write `BENCH_<suite>.json`.
///
/// # Example
///
/// ```no_run
/// use vksim_testkit::{black_box, Bench};
/// let mut b = Bench::new("example");
/// b.bench("sum_1k", || black_box((0..1000u64).sum::<u64>()));
/// b.finish();
/// ```
pub struct Bench {
    suite: String,
    warmup: u64,
    samples: u64,
    results: Vec<BenchResult>,
}

impl Bench {
    /// Creates a suite, reading the `VKSIM_BENCH_*` environment knobs.
    pub fn new(suite: &str) -> Self {
        let quick = std::env::var("VKSIM_BENCH_QUICK").map_or(false, |v| v != "0");
        let warmup = env_u64("VKSIM_BENCH_WARMUP").unwrap_or(if quick { 1 } else { 3 });
        let samples = env_u64("VKSIM_BENCH_SAMPLES").unwrap_or(if quick { 3 } else { 10 });
        eprintln!("bench suite '{suite}' (warmup {warmup}, samples {samples})");
        Bench {
            suite: suite.to_string(),
            warmup,
            samples: samples.max(1),
            results: Vec::new(),
        }
    }

    /// Measures `f`, recording a robust per-iteration time. The closure's
    /// return value is passed through [`black_box`](crate::black_box) so
    /// the computation cannot be optimized away.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) {
        for _ in 0..self.warmup {
            crate::black_box(f());
        }
        // Calibrate: target >= ~1 ms per sample so Instant resolution noise
        // stays below a tenth of a percent.
        let t0 = Instant::now();
        crate::black_box(f());
        let est_ns = t0.elapsed().as_nanos().max(1) as u64;
        let inner_iters = (1_000_000 / est_ns).clamp(1, 100_000);

        let mut samples_ns = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..inner_iters {
                crate::black_box(f());
            }
            samples_ns.push(t0.elapsed().as_nanos() as f64 / inner_iters as f64);
        }
        let median_ns = median(&samples_ns);
        let deviations: Vec<f64> = samples_ns.iter().map(|s| (s - median_ns).abs()).collect();
        let mad_ns = median(&deviations);
        println!(
            "{:<40} {:>14}  ± {:>12}  ({} samples × {} iters)",
            format!("{}/{}", self.suite, name),
            fmt_ns(median_ns),
            fmt_ns(mad_ns),
            samples_ns.len(),
            inner_iters,
        );
        self.results.push(BenchResult {
            name: name.to_string(),
            median_ns,
            mad_ns,
            inner_iters,
            samples_ns,
        });
    }

    /// Prints the summary and writes `BENCH_<suite>.json` into
    /// `VKSIM_BENCH_DIR` (default: the current directory).
    pub fn finish(self) {
        let dir = std::env::var("VKSIM_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.suite));
        let json = self.to_json();
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
            Ok(()) => eprintln!("bench suite '{}' -> {}", self.suite, path.display()),
            Err(e) => eprintln!(
                "bench suite '{}': failed to write {}: {e}",
                self.suite,
                path.display()
            ),
        }
    }

    fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"suite\": \"{}\",\n  \"results\": [\n",
            escape(&self.suite)
        ));
        for (i, r) in self.results.iter().enumerate() {
            let samples: Vec<String> = r.samples_ns.iter().map(|s| format!("{s:.1}")).collect();
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"mad_ns\": {:.1}, \
                 \"inner_iters\": {}, \"samples_ns\": [{}]}}{}\n",
                escape(&r.name),
                r.median_ns,
                r.mad_ns,
                r.inner_iters,
                samples.join(", "),
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|s| s.parse().ok())
}

fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn bench_records_results() {
        std::env::set_var("VKSIM_BENCH_QUICK", "1");
        let mut b = Bench::new("selftest");
        b.bench("noop", || 1 + 1);
        assert_eq!(b.results.len(), 1);
        let r = &b.results[0];
        assert!(r.median_ns >= 0.0);
        assert!(!r.samples_ns.is_empty());
        assert!(r.inner_iters >= 1);
        let json = b.to_json();
        assert!(json.contains("\"suite\": \"selftest\""));
        assert!(json.contains("\"name\": \"noop\""));
    }

    #[test]
    fn json_well_formed_for_multiple_results() {
        std::env::set_var("VKSIM_BENCH_QUICK", "1");
        let mut b = Bench::new("multi");
        b.bench("a", || 0u64);
        b.bench("b", || 0u64);
        let json = b.to_json();
        // Comma between entries, none after the last.
        assert_eq!(json.matches("{\"name\":").count(), 2);
        assert!(json.contains("},\n"));
        assert!(!json.contains("}],"));
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert!(fmt_ns(1500.0).ends_with("µs"));
        assert!(fmt_ns(2.5e6).ends_with("ms"));
        assert!(fmt_ns(3.0e9).ends_with(" s"));
    }
}
