//! Substrate micro-benchmarks: BVH construction and traversal throughput —
//! the hot paths behind every experiment. Runs on the `vksim-testkit`
//! bench harness (median/MAD, JSON to `BENCH_substrates.json`).

use vksim_bvh::geometry::Triangle;
use vksim_bvh::traversal::{traverse, TraversalConfig};
use vksim_bvh::{Blas, Instance, Tlas};
use vksim_math::{Mat4x3, Ray, Vec3};
use vksim_testkit::{black_box, Bench};

fn grid(n: usize) -> Vec<Triangle> {
    (0..n)
        .map(|i| {
            let x = (i % 64) as f32 * 2.0;
            let y = (i / 64) as f32 * 2.0;
            Triangle::new(
                Vec3::new(x, y, 0.0),
                Vec3::new(x + 1.5, y, 0.0),
                Vec3::new(x, y + 1.5, 0.0),
            )
        })
        .collect()
}

fn main() {
    let mut b = Bench::new("substrates");

    for n in [1_000usize, 10_000] {
        let tris = grid(n);
        b.bench(&format!("bvh_build/{n}"), || {
            black_box(Blas::from_triangles(&tris))
        });
    }

    let blas = Blas::from_triangles(&grid(10_000));
    let tlas = Tlas::build(vec![Instance::new(0, Mat4x3::IDENTITY)], &[&blas]);
    let cfg = TraversalConfig {
        record_events: false,
        ..Default::default()
    };
    let cfg_rec = TraversalConfig::default();
    b.bench("bvh_traverse/hit_10k_no_events", || {
        let ray = Ray::new(Vec3::new(40.0, 40.0, -5.0), Vec3::Z);
        black_box(
            traverse(&tlas, &[&blas], &ray, &cfg)
                .expect("well-formed scene")
                .closest,
        )
    });
    b.bench("bvh_traverse/hit_10k_recording_transactions", || {
        let ray = Ray::new(Vec3::new(40.0, 40.0, -5.0), Vec3::Z);
        black_box(
            traverse(&tlas, &[&blas], &ray, &cfg_rec)
                .expect("well-formed scene")
                .events
                .len(),
        )
    });

    b.finish();
}
