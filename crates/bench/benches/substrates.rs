//! Substrate micro-benchmarks: BVH construction and traversal throughput —
//! the hot paths behind every experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vksim_bvh::geometry::Triangle;
use vksim_bvh::traversal::{traverse, TraversalConfig};
use vksim_bvh::{Blas, Instance, Tlas};
use vksim_math::{Mat4x3, Ray, Vec3};

fn grid(n: usize) -> Vec<Triangle> {
    (0..n)
        .map(|i| {
            let x = (i % 64) as f32 * 2.0;
            let y = (i / 64) as f32 * 2.0;
            Triangle::new(
                Vec3::new(x, y, 0.0),
                Vec3::new(x + 1.5, y, 0.0),
                Vec3::new(x, y + 1.5, 0.0),
            )
        })
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("bvh_build");
    g.sample_size(10);
    for n in [1_000usize, 10_000] {
        let tris = grid(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &tris, |b, tris| {
            b.iter(|| std::hint::black_box(Blas::from_triangles(tris)))
        });
    }
    g.finish();
}

fn bench_traverse(c: &mut Criterion) {
    let mut g = c.benchmark_group("bvh_traverse");
    let blas = Blas::from_triangles(&grid(10_000));
    let tlas = Tlas::build(vec![Instance::new(0, Mat4x3::IDENTITY)], &[&blas]);
    let cfg = TraversalConfig { record_events: false, ..Default::default() };
    let cfg_rec = TraversalConfig::default();
    g.bench_function("hit_10k_no_events", |b| {
        b.iter(|| {
            let ray = Ray::new(Vec3::new(40.0, 40.0, -5.0), Vec3::Z);
            std::hint::black_box(traverse(&tlas, &[&blas], &ray, &cfg).closest)
        })
    });
    g.bench_function("hit_10k_recording_transactions", |b| {
        b.iter(|| {
            let ray = Ray::new(Vec3::new(40.0, 40.0, -5.0), Vec3::Z);
            std::hint::black_box(traverse(&tlas, &[&blas], &ray, &cfg_rec).events.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_build, bench_traverse);
criterion_main!(benches);
