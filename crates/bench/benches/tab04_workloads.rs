//! Bench for Table IV generation: functional characterization of all five
//! workloads (BVH depth, average nodes per ray, primitive count).

use vksim_bench::tab04_workloads;
use vksim_scenes::Scale;
use vksim_testkit::{black_box, Bench};

fn main() {
    let mut b = Bench::new("tab04");
    b.bench("workload_summary_test_scale", || {
        let rows = tab04_workloads(Scale::Test);
        assert_eq!(rows.len(), 5);
        black_box(rows)
    });
    b.finish();
}
