//! Criterion bench for Table IV generation: functional characterization of
//! all five workloads (BVH depth, average nodes per ray, primitive count).

use criterion::{criterion_group, criterion_main, Criterion};
use vksim_bench::tab04_workloads;
use vksim_scenes::Scale;

fn bench_tab04(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab04");
    g.sample_size(10);
    g.bench_function("workload_summary_test_scale", |b| {
        b.iter(|| {
            let rows = tab04_workloads(Scale::Test);
            assert_eq!(rows.len(), 5);
            std::hint::black_box(rows)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tab04);
criterion_main!(benches);
