//! Memory-system micro-benchmarks: the partitioned backend against the
//! monolithic one on a shared request stream, and FR-FCFS against FCFS on
//! a row-locality-heavy DRAM stream. Throughput only — the timing results
//! themselves are covered by unit tests and goldens.

use vksim_mem::{
    AccessKind, Dram, DramConfig, DramIssue, DramSched, MemRequest, MemSink, RequestQueue,
    SharedMemSystem, SystemConfig,
};
use vksim_testkit::{black_box, Bench, Pcg32};

/// Drives `n` read chunks through a backend and advances until idle;
/// returns the number of completions (consumed by `black_box`).
///
/// Submissions are paced below the saturation point: a saturated backend
/// spends its time in the (seed-identical) MSHR retry loop, which would
/// swamp the partitioning/scheduling costs this bench compares.
fn drive_system(config: SystemConfig, n: u64) -> u64 {
    let mut sys = SharedMemSystem::new(config);
    let mut rng = Pcg32::new(0x5EED_0000_0000_0001);
    let mut completions = 0u64;
    let mut cycle = 0u64;
    for i in 0..n {
        // Mixed stream: mostly streaming lines with some reuse.
        let addr = if rng.bool_with(0.25) {
            rng.u64_below(64) * 32
        } else {
            (i % 4096) * 32
        };
        sys.submit(
            MemRequest {
                id: i,
                addr,
                kind: AccessKind::ShaderLoad,
                is_store: false,
            },
            cycle,
        );
        cycle += 8;
        completions += sys.advance_to(cycle).len() as u64;
    }
    while !sys.is_idle() {
        cycle += 64;
        completions += sys.advance_to(cycle).len() as u64;
    }
    completions
}

/// The same paced stream as [`drive_system`], but offered through an
/// SM-side [`RequestQueue`] into a *bounded* interconnect, so the
/// refusal / head-of-line / re-offer path is on the measured profile.
fn drive_system_backpressured(config: SystemConfig, n: u64) -> u64 {
    let mut sys = SharedMemSystem::new(config);
    let mut queue = RequestQueue::new();
    let mut rng = Pcg32::new(0x5EED_0000_0000_0001);
    let mut completions = 0u64;
    let mut cycle = 0u64;
    for i in 0..n {
        let addr = if rng.bool_with(0.25) {
            rng.u64_below(64) * 32
        } else {
            (i % 4096) * 32
        };
        queue.submit(
            MemRequest {
                id: i,
                addr,
                kind: AccessKind::ShaderLoad,
                is_store: false,
            },
            cycle,
        );
        cycle += 8;
        completions += sys.advance_to(cycle).len() as u64;
        queue.drain_into(&mut sys);
    }
    while !sys.is_idle() || !queue.is_empty() {
        cycle += 64;
        completions += sys.advance_to(cycle).len() as u64;
        queue.drain_into(&mut sys);
    }
    completions
}

/// Drives a row-locality-heavy stream (runs of same-row chunks) straight
/// into a DRAM array; returns a checksum of completion cycles.
fn drive_dram(sched: DramSched, n: u64) -> u64 {
    let mut d = Dram::new(DramConfig {
        channels: 2,
        banks_per_channel: 4,
        sched,
        ..DramConfig::default()
    });
    let mut rng = Pcg32::new(0x5EED_0000_0000_0002);
    let mut sum = 0u64;
    let mut now = 0u64;
    for _ in 0..n / 8 {
        let row_base = rng.u64_below(256) * 2048;
        for c in 0..8 {
            now += 1;
            match d.submit(row_base + c * 32, now) {
                DramIssue::Done(done) => sum += done,
                DramIssue::Queued(_) => {}
            }
        }
        for (_, done) in d.run_schedule(now) {
            sum += done;
        }
    }
    for (_, done) in d.run_schedule(u64::MAX) {
        sum += done;
    }
    sum
}

fn main() {
    let mut b = Bench::new("mem");

    b.bench("system/monolithic_1p", || {
        black_box(drive_system(SystemConfig::default(), 2048))
    });
    b.bench("system/partitioned_4p", || {
        black_box(drive_system(
            SystemConfig {
                num_partitions: 4,
                ..SystemConfig::default()
            },
            2048,
        ))
    });

    b.bench("system/backpressured_4p", || {
        black_box(drive_system_backpressured(
            SystemConfig {
                num_partitions: 4,
                icnt_queue_depth: 8,
                icnt_return_credits: 4,
                ..SystemConfig::default()
            },
            2048,
        ))
    });

    b.bench("dram/fcfs", || black_box(drive_dram(DramSched::Fcfs, 2048)));
    b.bench("dram/fr_fcfs", || {
        black_box(drive_dram(DramSched::fr_fcfs_paper(), 2048))
    });

    b.finish();
}
