//! Ablation bench (DESIGN.md decision 2): baseline intersection table vs
//! function-call coalescing lowering on RTV6 — the Fig. 17 (left) case
//! study as a benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use vksim_core::{SimConfig, Simulator};
use vksim_scenes::{build, Scale, WorkloadKind};

fn bench_fcc(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_fcc");
    g.sample_size(10);
    let mut w = build(WorkloadKind::Rtv6, Scale::Test);
    let base_cmd = w.with_fcc(false);
    let fcc_cmd = w.with_fcc(true);
    g.bench_function("rtv6_baseline_table", |b| {
        b.iter(|| {
            let r = Simulator::new(SimConfig::test_small()).run(&w.device, &base_cmd);
            std::hint::black_box(r.gpu.cycles)
        })
    });
    g.bench_function("rtv6_fcc", |b| {
        b.iter(|| {
            let r = Simulator::new(SimConfig::test_small()).run(&w.device, &fcc_cmd);
            std::hint::black_box(r.gpu.cycles)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fcc);
criterion_main!(benches);
