//! Ablation bench (DESIGN.md decision 2): baseline intersection table vs
//! function-call coalescing lowering on RTV6 — the Fig. 17 (left) case
//! study as a benchmark.

use vksim_core::{SimConfig, Simulator};
use vksim_scenes::{build, Scale, WorkloadKind};
use vksim_testkit::{black_box, Bench};

fn main() {
    let mut b = Bench::new("ablation_fcc");
    let mut w = build(WorkloadKind::Rtv6, Scale::Test);
    let base_cmd = w.with_fcc(false);
    let fcc_cmd = w.with_fcc(true);
    b.bench("rtv6_baseline_table", || {
        let r = Simulator::new(SimConfig::test_small())
            .run(&w.device, &base_cmd)
            .expect("healthy run");
        black_box(r.gpu.cycles)
    });
    b.bench("rtv6_fcc", || {
        let r = Simulator::new(SimConfig::test_small())
            .run(&w.device, &fcc_cmd)
            .expect("healthy run");
        black_box(r.gpu.cycles)
    });
    b.finish();
}
