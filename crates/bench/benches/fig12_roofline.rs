//! Bench for the Fig. 12 roofline experiment: full cycle-level runs of
//! each workload with RT-unit operation/block accounting.

use vksim_bench::{fig12_roofline, run_workload};
use vksim_core::SimConfig;
use vksim_scenes::{Scale, WorkloadKind};
use vksim_testkit::{black_box, Bench};

fn main() {
    let mut b = Bench::new("fig12");
    b.bench("roofline_all_workloads", || {
        black_box(fig12_roofline(Scale::Test, &SimConfig::test_small()))
    });
    b.bench("timing_run_ext", || {
        let (_, report) = run_workload(WorkloadKind::Ext, Scale::Test, SimConfig::test_small());
        black_box(report.gpu.cycles)
    });
    b.finish();
}
