//! Criterion bench for the Fig. 12 roofline experiment: full cycle-level
//! runs of each workload with RT-unit operation/block accounting.

use criterion::{criterion_group, criterion_main, Criterion};
use vksim_bench::{fig12_roofline, run_workload};
use vksim_core::SimConfig;
use vksim_scenes::{Scale, WorkloadKind};

fn bench_roofline(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("roofline_all_workloads", |b| {
        b.iter(|| std::hint::black_box(fig12_roofline(Scale::Test, &SimConfig::test_small())))
    });
    g.bench_function("timing_run_ext", |b| {
        b.iter(|| {
            let (_, report) = run_workload(WorkloadKind::Ext, Scale::Test, SimConfig::test_small());
            std::hint::black_box(report.gpu.cycles)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_roofline);
criterion_main!(benches);
