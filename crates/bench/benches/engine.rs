//! Cycle-engine throughput: serial reference path vs the parallel
//! two-phase engine on an 8-SM configuration (the mobile Table III config,
//! Test scale so a sample stays in the milliseconds).
//!
//! Counters are bit-identical at any thread count (see
//! `tests/golden_counters.rs::threads_do_not_change_counters`); this bench
//! measures only wall time. The speedup from `threads/4` over `threads/1`
//! is only visible on a multi-core host — on a single-core container the
//! parallel path measures the engine's coordination overhead instead.

use vksim_bench::run_workload;
use vksim_core::SimConfig;
use vksim_scenes::{Scale, WorkloadKind};
use vksim_testkit::{black_box, Bench};

fn main() {
    let mut b = Bench::new("engine");

    // 8 SMs (mobile config); Ext is the heaviest of the golden workloads.
    for threads in [1usize, 4] {
        let config = SimConfig::mobile().with_threads(threads);
        b.bench(&format!("ext_8sm/threads_{threads}"), || {
            let cfg = config.clone();
            black_box(
                run_workload(WorkloadKind::Ext, Scale::Test, cfg)
                    .1
                    .gpu
                    .cycles,
            )
        });
    }

    b.finish();
}
