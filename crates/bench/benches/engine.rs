//! Cycle-engine throughput: serial reference path vs the parallel
//! two-phase engine on an 8-SM configuration (the mobile Table III config,
//! Test scale so a sample stays in the milliseconds).
//!
//! Counters are bit-identical at any thread count (see
//! `tests/golden_counters.rs::threads_do_not_change_counters`); this bench
//! measures only wall time. The speedup from `threads/4` over `threads/1`
//! is only visible on a multi-core host — on a single-core container the
//! parallel path measures the engine's coordination overhead instead.

use vksim_bench::run_workload;
use vksim_core::SimConfig;
use vksim_scenes::{Scale, WorkloadKind};
use vksim_testkit::{black_box, Bench};

fn main() {
    let mut b = Bench::new("engine");

    // 8 SMs (mobile config); Ext is the heaviest of the golden workloads.
    // Each (threads, observer) variant is gated at 2% against its own
    // recorded baseline, so both the disabled-path cost of the
    // observability hooks AND the enabled cost of each observer are
    // bounded — an attribution change that slows the profiled tick loop
    // fails the `_prof` entries, and a traversal-analytics change that
    // slows instrumented runs fails the `_rt` entries, without touching
    // the plain ones.
    for threads in [1usize, 4] {
        let base = || SimConfig::mobile().with_threads(threads);
        for (suffix, config) in [
            ("", base()),
            ("_prof", base().with_accounting(true)),
            ("_rt", base().with_rt_analytics(true)),
        ] {
            b.bench(&format!("ext_8sm/threads_{threads}{suffix}"), || {
                let cfg = config.clone();
                black_box(
                    run_workload(WorkloadKind::Ext, Scale::Test, cfg)
                        .1
                        .gpu
                        .cycles,
                )
            });
        }
    }

    b.finish();
}
