//! Regenerates the paper's tables and figures.
//!
//! ```text
//! vksim-experiments [EXPERIMENT] [--scale test|small|paper]
//!                   [--trace=FILE.json] [--trace-interval=CYCLES]
//!                   [--prof=FILE.json] [--prof-summary]
//!                   [--rt-analytics=FILE.json] [--rt-heatmap=FILE.csv]
//!                   [--rt-summary]
//! ```
//!
//! Without arguments, runs every experiment at test scale. Experiments:
//! `tab02 tab03 tab04 fig01 fig02 fig11 fig12 fig13 fig14 fig15 fig16
//! fig17 fig18 fig19 instmix energy`.
//!
//! `--trace=FILE.json` enables cycle-level tracing and writes a Chrome
//! trace-event file loadable in Perfetto (it maps to the `VKSIM_TRACE`
//! environment override, so every simulation in the invocation traces
//! into the same file — trace a single experiment at a time).
//! `--trace-interval=CYCLES` sets the interval-metrics sampler period
//! (`VKSIM_TRACE_INTERVAL`).
//!
//! `--prof=FILE.json` enables per-SM cycle accounting and writes the
//! flat-JSON stall breakdown (it maps to `VKSIM_PROF`, so — like
//! `--trace` — profile a single experiment at a time; `-` prints to
//! stderr). `--prof-summary` runs every workload with accounting on and
//! prints the human-readable stall table: top stall category, SIMT
//! efficiency, achieved vs peak IPC and warp occupancy.
//!
//! `--rt-analytics=FILE.json` enables ray-traversal analytics and writes
//! the flat-JSON characterization (maps to `VKSIM_RT_ANALYTICS`; `-`
//! prints to stderr); `--rt-heatmap=FILE.csv` writes the per-BVH-node
//! visit/hit heatmap (`VKSIM_RT_HEATMAP`). `--rt-summary` runs every
//! workload with analytics on and prints the human-readable traversal
//! table: rays traced, per-ray node/box/triangle work, heatmap
//! concentration, warp traversal coherence and RT-unit attribution.

use vksim_bench as x;
use vksim_core::SimConfig;
use vksim_scenes::{Scale, WorkloadKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--scale=small") {
        Scale::Small
    } else if args.iter().any(|a| a == "--scale=paper") {
        Scale::Paper
    } else {
        Scale::Test
    };
    // Trace flags become the environment overrides the engine already
    // honours, so the whole config plumbing stays in one place.
    for a in &args {
        if let Some(path) = a.strip_prefix("--trace=") {
            std::env::set_var("VKSIM_TRACE", path);
        } else if let Some(iv) = a.strip_prefix("--trace-interval=") {
            std::env::set_var("VKSIM_TRACE_INTERVAL", iv);
        } else if let Some(path) = a.strip_prefix("--prof=") {
            std::env::set_var("VKSIM_PROF", path);
        } else if let Some(path) = a.strip_prefix("--rt-analytics=") {
            std::env::set_var("VKSIM_RT_ANALYTICS", path);
        } else if let Some(path) = a.strip_prefix("--rt-heatmap=") {
            std::env::set_var("VKSIM_RT_HEATMAP", path);
        }
    }
    let prof_summary = args.iter().any(|a| a == "--prof-summary");
    if prof_summary {
        println!("== Cycle accounting: per-workload stall breakdown ==");
        for (name, summary) in x::prof_summary_rows(scale) {
            println!("\n-- {name} --");
            for line in summary.lines() {
                println!("  {line}");
            }
        }
    }
    let rt_summary = args.iter().any(|a| a == "--rt-summary");
    if rt_summary {
        println!("== Ray-traversal analytics: per-workload characterization ==");
        for (name, summary) in x::rt_summary_rows(scale) {
            println!("\n-- {name} --");
            for line in summary.lines() {
                println!("  {line}");
            }
        }
    }
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    // `--prof-summary` / `--rt-summary` alone are complete invocations;
    // named experiments can still be combined with them.
    let all = which.is_empty() && !prof_summary && !rt_summary;
    let want = |name: &str| all || which.contains(&name);

    if want("tab02") {
        println!("== Table II: custom PTX instructions ==");
        for (i, d) in [
            ("traverseAS", "Traverse the acceleration structure"),
            (
                "endTraceRay",
                "Pop traversal results stack and clear intersection table",
            ),
            ("rt_alloc_mem", "Allocate memory shared among shader stages"),
            ("load_ray_launch_id", "Load a unique ray ID for each thread"),
            (
                "intersectionExit",
                "Check for remaining pending intersections",
            ),
            (
                "getIntersectionShaderID",
                "Read a pending intersection's shader ID",
            ),
            (
                "getNextCoalescedCall",
                "FCC: read the next coalescing-buffer row",
            ),
            ("reportIntersectionEXT", "Commit a procedural hit"),
        ] {
            println!("  {i:<24} {d}");
        }
    }

    if want("tab03") {
        println!("\n== Table III: GPU configurations ==");
        for (name, c) in [
            ("baseline", SimConfig::baseline()),
            ("mobile", SimConfig::mobile()),
        ] {
            let g = &c.gpu;
            println!(
                "  {name:<9} SMs={:<3} maxWarps/SM={:<3} regs/SM={:<6} L1={}KB L2={}MB clk={}MHz rtWarps={}",
                g.num_sms,
                g.max_warps_per_sm,
                g.registers_per_sm,
                g.l1.size_bytes / 1024,
                g.mem.l2.size_bytes / 1024 / 1024,
                g.core_clock_mhz,
                g.rt_unit.max_warps
            );
        }
    }

    if want("tab04") {
        println!("\n== Table IV: workload summary ==");
        println!(
            "  {:<6} {:>9} {:>14} {:>12}",
            "scene", "BVH depth", "avg nodes/ray", "primitives"
        );
        for r in x::tab04_workloads(scale) {
            println!(
                "  {:<6} {:>9} {:>14.1} {:>12}",
                r.name, r.bvh_depth, r.avg_nodes_per_ray, r.primitive_count
            );
        }
    }

    if want("fig01") {
        println!("\n== Fig. 1 (substituted): ray-tracing share of execution ==");
        for (name, frac) in x::fig01_frame_breakdown(scale) {
            println!("  {name:<6} RT share = {:.1}%", frac * 100.0);
        }
    }

    if want("fig02") {
        println!("\n== Fig. 2: simulator vs reference pixel diff ==");
        for (name, diff) in x::fig02_pixel_diff(scale) {
            println!("  {name:<6} {:.3}% of pixels differ", diff * 100.0);
        }
    }

    if want("instmix") {
        println!("\n== Instruction mix (§VI) ==");
        for (name, m) in x::instruction_mix_rows(scale) {
            println!(
                "  {name:<6} ALU={:>5.1}% SFU={:>4.1}% MEM={:>5.1}% CTRL={:>5.1}% RT={:>4.1}% (trace {:.2}%)",
                m.alu * 100.0,
                m.sfu * 100.0,
                m.mem * 100.0,
                m.ctrl * 100.0,
                m.rt * 100.0,
                m.trace_ray * 100.0
            );
        }
    }

    if want("fig11") {
        println!("\n== Fig. 11: correlation vs hardware proxy (baseline config) ==");
        let c = x::correlation_study(scale, &x::config_for_scale(scale));
        for (name, sim, hw) in &c.points {
            println!("  {name:<6} sim={sim:>12.0}  hw-proxy={hw:>12.0}");
        }
        println!(
            "  correlation = {:.1}%  slope = {:.2}",
            c.correlation * 100.0,
            c.slope
        );
    }

    if want("fig12") {
        println!("\n== Fig. 12: RT-unit roofline ==");
        for (name, oi, perf, memb) in x::fig12_roofline(scale, &x::config_for_scale(scale)) {
            println!(
                "  {name:<6} intensity={oi:>7.2} ops/block  perf={perf:>7.3} ops/cycle  [{}]",
                if memb {
                    "memory-bound"
                } else {
                    "compute-bound"
                }
            );
        }
    }

    if want("fig13") {
        println!("\n== Fig. 13: EXT warp latency distribution in RT units ==");
        for (edge, count) in x::fig13_warp_latency(scale) {
            println!("  [{:>8.0} cycles) {count}", edge);
        }
    }

    if want("fig14") {
        println!("\n== Fig. 14: cache access breakdown (L1D | L2) ==");
        for (name, l1, l2) in x::fig14_cache_breakdown(scale) {
            println!(
                "  {name:<6} L1: hit(s/r)={}/{} cold={}/{} thrash={}/{} | L2: hit(s/r)={}/{} cold={}/{} thrash={}/{}",
                l1.shader_hits, l1.rt_hits, l1.shader_compulsory, l1.rt_compulsory,
                l1.shader_thrash, l1.rt_thrash,
                l2.shader_hits, l2.rt_hits, l2.shader_compulsory, l2.rt_compulsory,
                l2.shader_thrash, l2.rt_thrash
            );
        }
    }

    if want("fig15") {
        println!("\n== Fig. 15: execution time by memory configuration (normalized) ==");
        for (name, series) in x::fig15_memory_modes(scale) {
            print!("  {name:<6}");
            for (mode, rel) in series {
                print!("  {mode}={rel:.2}");
            }
            println!();
        }
    }

    if want("fig16") {
        println!("\n== Fig. 16: DRAM efficiency/utilization vs RT-unit max warps (EXT) ==");
        let limits = [1usize, 2, 4, 8, 12, 16, 20];
        for (n, eff, util) in x::fig16_dram_sweep(WorkloadKind::Ext, scale, &limits) {
            println!(
                "  warps={n:<3} efficiency={:.1}%  utilization={:.1}%",
                eff * 100.0,
                util * 100.0
            );
        }
    }

    if want("fig17") {
        println!("\n== Fig. 17: FCC and ITS case studies ==");
        let (speedup, base_eff, fcc_eff) = x::fig17_fcc(scale);
        println!(
            "  FCC on RTV6 (mobile): speedup={speedup:.3}x  SIMT eff {:.1}% -> {:.1}%",
            base_eff * 100.0,
            fcc_eff * 100.0
        );
        for (name, s) in x::fig17_its(scale) {
            println!("  ITS {name:<6} speedup = {s:.3}x");
        }
    }

    if want("fig18") {
        println!("\n== Fig. 18: RT-unit occupancy (EXT), stack vs ITS ==");
        let (stack, its) = x::fig18_occupancy(scale);
        let mean = |v: &[(u64, u32)]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().map(|&(_, w)| w as f64).sum::<f64>() / v.len() as f64
            }
        };
        println!(
            "  stack: {} samples, mean resident warps {:.2}",
            stack.len(),
            mean(&stack)
        );
        println!(
            "  its:   {} samples, mean resident warps {:.2}",
            its.len(),
            mean(&its)
        );
    }

    if want("fig19") {
        println!("\n== Fig. 19: correlation study across tuned configurations ==");
        for (name, mut config) in x::fig19_configs() {
            // Keep run time sane: shrink the SM count at test scale.
            if matches!(scale, Scale::Test) {
                config.gpu.num_sms = 4;
            }
            let c = x::correlation_study(scale, &config);
            println!(
                "  config {name:<22} correlation={:.1}% slope={:.2}",
                c.correlation * 100.0,
                c.slope
            );
        }
    }

    if want("energy") {
        println!("\n== §VI-D: energy breakdown ==");
        for (name, comps) in x::energy_rows(scale) {
            print!("  {name:<6}");
            for (c, frac) in comps {
                print!(" {c}={:.1}%", frac * 100.0);
            }
            println!();
        }
    }
}
