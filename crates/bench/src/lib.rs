//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (see DESIGN.md's per-experiment index).
//!
//! Each `fig_*` / `tab_*` function runs the necessary simulations and
//! returns the printable rows/series the paper reports. The
//! `vksim-experiments` binary (`src/bin/experiments.rs`) exposes them on
//! the command line; the Criterion benches in `benches/` wrap the hot paths.

use vksim_core::hwproxy::{HwProxy, WorkloadProfile};
use vksim_core::report::{
    instruction_mix, roofline_point, rt_roofline, rt_time_fraction, CacheBreakdown,
};
use vksim_core::{MemoryMode, RunReport, SimConfig, Simulator};
use vksim_scenes::{build, reference, Scale, Workload, WorkloadKind};
use vksim_stats::{least_squares_slope, pearson};

/// The simulation configuration matched to a scene scale: paper-sized
/// scenes run on the 48-SM, 8-partition paper machine (Table IV / Fig. 12
/// fidelity); test scenes use the 2-SM mule so the suite stays fast.
pub fn config_for_scale(scale: Scale) -> SimConfig {
    match scale {
        Scale::Paper => SimConfig::paper(),
        _ => SimConfig::test_small(),
    }
}

/// Runs one workload under a configuration, returning the workload and the
/// full run report.
pub fn run_workload(kind: WorkloadKind, scale: Scale, config: SimConfig) -> (Workload, RunReport) {
    let w = build(kind, scale);
    let report = Simulator::new(config)
        .run(&w.device, &w.cmd)
        .expect("healthy run");
    (w, report)
}

/// Runs each workload with cycle accounting enabled and returns its
/// human-readable stall summary (the `--prof-summary` report: top stall
/// category, SIMT efficiency, achieved vs peak IPC, occupancy).
pub fn prof_summary_rows(scale: Scale) -> Vec<(&'static str, String)> {
    WorkloadKind::ALL
        .iter()
        .map(|&k| {
            let config = config_for_scale(scale).with_accounting(true);
            let (w, report) = run_workload(k, scale, config);
            let prof = report.prof.expect("accounting enabled");
            debug_assert!(prof.conservation_holds());
            (w.name, prof.summary())
        })
        .collect()
}

/// Runs each workload with ray-traversal analytics enabled and returns
/// its human-readable characterization (the `--rt-summary` report: rays
/// traced, per-ray traversal work, heatmap concentration, warp
/// coherence, RT-unit attribution).
pub fn rt_summary_rows(scale: Scale) -> Vec<(&'static str, String)> {
    WorkloadKind::ALL
        .iter()
        .map(|&k| {
            let config = config_for_scale(scale).with_rt_analytics(true);
            let (w, report) = run_workload(k, scale, config);
            let rt = report.rt.expect("rt analytics enabled");
            debug_assert!(rt.conservation_holds());
            (w.name, rt.summary())
        })
        .collect()
}

/// One row shared by several experiments.
#[derive(Clone, Debug)]
pub struct WorkloadRow {
    /// Workload name.
    pub name: &'static str,
    /// Simulated cycles.
    pub cycles: u64,
    /// The full report.
    pub report: RunReport,
}

/// Runs all five workloads under `config`.
pub fn run_all(scale: Scale, config: &SimConfig) -> Vec<WorkloadRow> {
    WorkloadKind::ALL
        .iter()
        .map(|&k| {
            let (w, report) = run_workload(k, scale, config.clone());
            WorkloadRow {
                name: w.name,
                cycles: report.gpu.cycles,
                report,
            }
        })
        .collect()
}

/// Fig. 1 substitute: per-workload ray-tracing share of execution (the
/// paper profiles RTX games and finds 28% of frame time on average).
pub fn fig01_frame_breakdown(scale: Scale) -> Vec<(String, f64)> {
    let config = SimConfig::test_small();
    let num_sms = config.gpu.num_sms;
    run_all(scale, &config)
        .into_iter()
        .map(|r| (r.name.to_string(), rt_time_fraction(&r.report.gpu, num_sms)))
        .collect()
}

/// Fig. 2: pixel-diff percentage between the simulator's image and the
/// reference renderer, per validated workload.
pub fn fig02_pixel_diff(scale: Scale) -> Vec<(String, f64)> {
    use vksim_core::validate::{pixel_diff_fraction, read_framebuffer};
    [WorkloadKind::Tri, WorkloadKind::Ref, WorkloadKind::Ext]
        .iter()
        .map(|&k| {
            let w = build(k, scale);
            let mut sim = Simulator::new(SimConfig::test_small());
            let (mem, _) = sim.run_functional(&w.device, &w.cmd).expect("healthy run");
            let img = read_framebuffer(&mem, w.fb_addr, (w.width * w.height) as usize);
            let reference = reference::render(&w);
            let diff = pixel_diff_fraction(&img, &reference, 1).expect("same dimensions");
            (w.name.to_string(), diff)
        })
        .collect()
}

/// Table IV row: workload summary.
#[derive(Clone, Debug)]
pub struct Tab04Row {
    /// Workload name.
    pub name: &'static str,
    /// BVH tree depth (TLAS + deepest BLAS).
    pub bvh_depth: u32,
    /// Average nodes visited per ray.
    pub avg_nodes_per_ray: f64,
    /// Primitive count.
    pub primitive_count: usize,
}

/// Table IV: workload summary (depth, nodes/ray, primitives). Uses the
/// functional simulator so it scales to Paper-sized scenes.
pub fn tab04_workloads(scale: Scale) -> Vec<Tab04Row> {
    WorkloadKind::ALL
        .iter()
        .map(|&k| {
            let w = build(k, scale);
            let mut sim = Simulator::new(config_for_scale(scale));
            let (_, stats) = sim.run_functional(&w.device, &w.cmd).expect("healthy run");
            Tab04Row {
                name: w.name,
                bvh_depth: w.bvh_depth,
                avg_nodes_per_ray: stats.avg_nodes_per_ray(),
                primitive_count: w.primitive_count,
            }
        })
        .collect()
}

/// §VI intro: instruction-mix percentages per workload.
pub fn instruction_mix_rows(scale: Scale) -> Vec<(String, vksim_core::report::InstructionMix)> {
    run_all(scale, &SimConfig::test_small())
        .into_iter()
        .map(|r| (r.name.to_string(), instruction_mix(&r.report.gpu)))
        .collect()
}

/// Correlation result (Figs. 11 / 19).
#[derive(Clone, Debug)]
pub struct Correlation {
    /// Per-workload `(name, simulator cycles, hardware-proxy cycles)`.
    pub points: Vec<(String, f64, f64)>,
    /// Pearson correlation coefficient.
    pub correlation: f64,
    /// Least-squares slope of hw = slope × sim.
    pub slope: f64,
}

/// Runs the correlation study for one configuration (Fig. 11 uses the
/// baseline; Fig. 19 sweeps tuned configurations).
pub fn correlation_study(scale: Scale, config: &SimConfig) -> Correlation {
    let hw = HwProxy::default();
    let mut points = Vec::new();
    for &k in &WorkloadKind::ALL {
        let w = build(k, scale);
        let report = Simulator::new(config.clone())
            .run(&w.device, &w.cmd)
            .expect("healthy run");
        let footprint: u64 = w.device.blases.iter().map(|b| b.size_bytes()).sum::<u64>()
            + w.device.tlas.as_ref().map(|t| t.size_bytes()).unwrap_or(0);
        let profile = WorkloadProfile::from_stats(
            report.gpu.issued_insts,
            &report.runtime,
            footprint,
            config.gpu.num_sms as u32,
        );
        points.push((
            w.name.to_string(),
            report.gpu.cycles as f64,
            hw.estimate_cycles(&profile),
        ));
    }
    let xs: Vec<f64> = points.iter().map(|p| p.1).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.2).collect();
    Correlation {
        correlation: pearson(&xs, &ys).unwrap_or(0.0),
        slope: least_squares_slope(&xs, &ys).unwrap_or(0.0),
        points,
    }
}

/// Fig. 19: the three tuning steps of the correlation study — (a) matched
/// parameters with 4 RT-unit warps, (b) higher latencies with 2 warps,
/// (c) 1 warp (the paper's best fit, slope 0.88).
pub fn fig19_configs() -> Vec<(&'static str, SimConfig)> {
    let a = SimConfig::baseline().with_rt_max_warps(4);
    let mut b = SimConfig::baseline().with_rt_max_warps(2);
    b.gpu.l1.hit_latency = 32;
    b.gpu.mem.l2.hit_latency = 210;
    let mut c = SimConfig::baseline().with_rt_max_warps(1);
    c.gpu.l1.hit_latency = 32;
    c.gpu.mem.l2.hit_latency = 210;
    vec![
        ("a: matched, 4 warps", a),
        ("b: latencies, 2 warps", b),
        ("c: 1 warp", c),
    ]
}

/// Fig. 12: roofline points for all workloads plus the roofs.
pub fn fig12_roofline(scale: Scale, config: &SimConfig) -> Vec<(String, f64, f64, bool)> {
    let roof = rt_roofline(
        config.gpu.rt_unit.box_latency,
        config.gpu.rt_unit.triangle_latency,
        config.gpu.rt_unit.transform_latency,
    );
    run_all(scale, config)
        .into_iter()
        .map(|r| {
            let p = roofline_point(&r.report.gpu);
            (
                r.name.to_string(),
                p.operational_intensity,
                p.performance,
                roof.is_memory_bound(&p),
            )
        })
        .collect()
}

/// Fig. 13: RT-unit warp-latency histogram for EXT.
pub fn fig13_warp_latency(scale: Scale) -> Vec<(f64, u64)> {
    let (_, report) = run_workload(WorkloadKind::Ext, scale, SimConfig::test_small());
    report.gpu.rt_warp_latency.iter().collect()
}

/// Fig. 14: L1D and L2 access breakdowns per workload.
pub fn fig14_cache_breakdown(scale: Scale) -> Vec<(String, CacheBreakdown, CacheBreakdown)> {
    run_all(scale, &SimConfig::test_small())
        .into_iter()
        .map(|r| {
            (
                r.name.to_string(),
                CacheBreakdown::from_counters(&r.report.gpu.l1_stats),
                CacheBreakdown::from_counters(&r.report.gpu.l2_stats),
            )
        })
        .collect()
}

/// Fig. 15: execution time under the four memory configurations,
/// normalized to baseline.
pub fn fig15_memory_modes(scale: Scale) -> Vec<(String, Vec<(&'static str, f64)>)> {
    let modes = [
        ("baseline", MemoryMode::Baseline),
        ("rt-cache", MemoryMode::RtCache),
        ("perfect-bvh", MemoryMode::PerfectBvh),
        ("perfect-mem", MemoryMode::PerfectMem),
    ];
    WorkloadKind::ALL
        .iter()
        .map(|&k| {
            let w = build(k, scale);
            let base = Simulator::new(SimConfig::test_small())
                .run(&w.device, &w.cmd)
                .expect("healthy run")
                .gpu
                .cycles as f64;
            let series = modes
                .iter()
                .map(|&(name, mode)| {
                    let c = Simulator::new(SimConfig::test_small().with_memory_mode(mode))
                        .run(&w.device, &w.cmd)
                        .expect("healthy run")
                        .gpu
                        .cycles as f64;
                    (name, c / base)
                })
                .collect();
            (w.name.to_string(), series)
        })
        .collect()
}

/// Fig. 16: DRAM efficiency and utilization versus the RT unit's maximum
/// concurrent warps.
pub fn fig16_dram_sweep(
    kind: WorkloadKind,
    scale: Scale,
    warp_limits: &[usize],
) -> Vec<(usize, f64, f64)> {
    let w = build(kind, scale);
    warp_limits
        .iter()
        .map(|&n| {
            let r = Simulator::new(SimConfig::test_small().with_rt_max_warps(n))
                .run(&w.device, &w.cmd)
                .expect("healthy run");
            (n, r.gpu.dram_efficiency, r.gpu.dram_utilization)
        })
        .collect()
}

/// Fig. 17 (left): FCC vs baseline on RTV6 — speedup and SIMT efficiency.
pub fn fig17_fcc(scale: Scale) -> (f64, f64, f64) {
    let mut w = build(WorkloadKind::Rtv6, scale);
    let base_cmd = w.with_fcc(false);
    let fcc_cmd = w.with_fcc(true);
    let config = SimConfig::mobile(); // the paper evaluates FCC on mobile
    let base = Simulator::new(config.clone())
        .run(&w.device, &base_cmd)
        .expect("healthy run");
    let fcc = Simulator::new(config)
        .run(&w.device, &fcc_cmd)
        .expect("healthy run");
    let speedup = base.gpu.cycles as f64 / fcc.gpu.cycles as f64;
    (speedup, base.gpu.simt_efficiency, fcc.gpu.simt_efficiency)
}

/// Fig. 17 (right): ITS vs stack reconvergence — speedup per workload.
pub fn fig17_its(scale: Scale) -> Vec<(String, f64)> {
    WorkloadKind::ALL
        .iter()
        .map(|&k| {
            let w = build(k, scale);
            let stack = Simulator::new(SimConfig::test_small())
                .run(&w.device, &w.cmd)
                .expect("healthy run");
            let its = Simulator::new(SimConfig::test_small().with_its(true))
                .run(&w.device, &w.cmd)
                .expect("healthy run");
            (
                w.name.to_string(),
                stack.gpu.cycles as f64 / its.gpu.cycles as f64,
            )
        })
        .collect()
}

/// One RT-unit occupancy timeline: `(sample cycle, resident warps)` points.
pub type OccupancyTimeline = Vec<(u64, u32)>;

/// Fig. 18: RT-unit occupancy timelines (resident warps per sample) for
/// stack vs ITS on EXT.
pub fn fig18_occupancy(scale: Scale) -> (OccupancyTimeline, OccupancyTimeline) {
    let w = build(WorkloadKind::Ext, scale);
    let collect = |r: &RunReport| -> Vec<(u64, u32)> {
        r.gpu
            .rt_occupancy
            .first()
            .map(|t| t.iter().map(|&(c, w, _)| (c, w)).collect())
            .unwrap_or_default()
    };
    let stack = Simulator::new(SimConfig::test_small())
        .run(&w.device, &w.cmd)
        .expect("healthy run");
    let its = Simulator::new(SimConfig::test_small().with_its(true))
        .run(&w.device, &w.cmd)
        .expect("healthy run");
    (collect(&stack), collect(&its))
}

/// §VI-D: energy breakdown per workload.
pub fn energy_rows(scale: Scale) -> Vec<(String, Vec<(&'static str, f64)>)> {
    run_all(scale, &SimConfig::test_small())
        .into_iter()
        .map(|r| {
            let comps = r
                .report
                .power
                .components
                .iter()
                .map(|&(n, e)| (n, e / r.report.power.total_energy_j.max(1e-30)))
                .collect();
            (r.name.to_string(), comps)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab04_has_five_rows_in_paper_order() {
        let rows = tab04_workloads(Scale::Test);
        let names: Vec<&str> = rows.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["TRI", "REF", "EXT", "RTV5", "RTV6"]);
        for r in &rows {
            assert!(r.avg_nodes_per_ray > 0.0, "{}", r.name);
        }
        // TRI is the smallest scene; EXT visits the most nodes per ray
        // among the triangle scenes (matches the Table IV shape).
        let tri = &rows[0];
        let ext = &rows[2];
        assert!(ext.avg_nodes_per_ray > tri.avg_nodes_per_ray);
        assert!(ext.primitive_count > tri.primitive_count);
    }

    #[test]
    fn fig02_diffs_are_small() {
        for (name, diff) in fig02_pixel_diff(Scale::Test) {
            assert!(diff < 0.02, "{name}: {diff}");
        }
    }

    #[test]
    fn fig16_sweep_returns_requested_points() {
        let pts = fig16_dram_sweep(WorkloadKind::Tri, Scale::Test, &[1, 4, 8]);
        assert_eq!(pts.len(), 3);
        for (n, eff, util) in pts {
            assert!(n >= 1);
            assert!((0.0..=1.0).contains(&eff));
            assert!((0.0..=1.0).contains(&util));
        }
    }

    #[test]
    fn fig19_has_three_configs_with_decreasing_rt_warps() {
        let cfgs = fig19_configs();
        assert_eq!(cfgs.len(), 3);
        let warps: Vec<usize> = cfgs.iter().map(|(_, c)| c.gpu.rt_unit.max_warps).collect();
        assert_eq!(warps, vec![4, 2, 1]);
    }
}
