//! Shared L2 + interconnect + DRAM backend.
//!
//! All SMs' L1 misses funnel through one [`SharedMemSystem`] (paper Fig. 3:
//! SMs connect to memory partitions through an on-chip interconnect). The
//! model is event-driven: producers [`SharedMemSystem::submit`] chunk-sized
//! requests and poll [`SharedMemSystem::advance_to`] each core cycle for
//! completions.

use crate::cache::{AccessKind, Cache, CacheConfig, CacheOutcome};
use crate::dram::{Dram, DramConfig};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use vksim_stats::Counters;

/// Configuration of the shared memory backend.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// The unified L2 cache.
    pub l2: CacheConfig,
    /// DRAM behind the L2.
    pub dram: DramConfig,
    /// One-way interconnect latency in cycles (SM <-> L2).
    pub icnt_latency: u32,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            l2: CacheConfig::l2_baseline(),
            dram: DramConfig::default(),
            icnt_latency: 8,
        }
    }
}

/// One 32 B memory request from an SM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRequest {
    /// Caller-chosen identifier returned on completion.
    pub id: u64,
    /// Chunk-aligned address.
    pub addr: u64,
    /// Source tag for cache statistics.
    pub kind: AccessKind,
    /// `true` for (write-through) stores.
    pub is_store: bool,
}

/// Anything that accepts timed [`MemRequest`]s.
///
/// The SM pipeline is written against this trait so the same tick code runs
/// in two regimes:
///
/// * serial reference path — the sink *is* the [`SharedMemSystem`] and the
///   request enters the event heap immediately;
/// * two-phase cycle engine — the sink is a per-SM [`RequestQueue`]; the
///   coordinator later drains the queues serially in SM-id order, which
///   reproduces the exact submit order (and `seq` numbering) of the serial
///   path regardless of worker-thread count.
pub trait MemSink {
    /// Accepts a request issued at cycle `now`.
    fn submit(&mut self, req: MemRequest, now: u64);
}

/// An ordered buffer of outbound memory requests from one SM for one cycle.
///
/// Order of insertion is preserved; [`RequestQueue::drain_into`] forwards
/// the requests to the shared backend in that order.
#[derive(Clone, Debug, Default)]
pub struct RequestQueue {
    items: Vec<(MemRequest, u64)>,
}

impl RequestQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Forwards all queued requests to `sink` in insertion order and clears
    /// the queue.
    pub fn drain_into(&mut self, sink: &mut dyn MemSink) {
        for (req, now) in self.items.drain(..) {
            sink.submit(req, now);
        }
    }
}

impl MemSink for RequestQueue {
    fn submit(&mut self, req: MemRequest, now: u64) {
        self.items.push((req, now));
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EvKind {
    ArriveL2(MemRequest),
    DramDone { line: u64 },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Ev {
    time: u64,
    seq: u64,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The shared L2/DRAM system.
///
/// # Example
///
/// ```
/// use vksim_mem::{SharedMemSystem, SystemConfig, MemRequest, AccessKind};
/// let mut sys = SharedMemSystem::new(SystemConfig::default());
/// sys.submit(MemRequest { id: 1, addr: 0x1000, kind: AccessKind::ShaderLoad, is_store: false }, 0);
/// let mut done = Vec::new();
/// let mut t = 0;
/// while done.is_empty() {
///     t += 1;
///     done.extend(sys.advance_to(t));
/// }
/// assert_eq!(done[0].0, 1);
/// ```
#[derive(Debug)]
pub struct SharedMemSystem {
    l2: Cache,
    dram: Dram,
    icnt_latency: u32,
    events: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    waiting: HashMap<u64, Vec<u64>>,
    /// Fault injection: silently drop the Nth (1-based) completion.
    drop_nth_completion: Option<u64>,
    /// Completions delivered so far (drives `drop_nth_completion`).
    completions_delivered: u64,
    /// Interconnect / backend traffic counters.
    pub stats: Counters,
}

impl SharedMemSystem {
    /// Creates an idle backend.
    pub fn new(config: SystemConfig) -> Self {
        SharedMemSystem {
            l2: Cache::new(config.l2),
            dram: Dram::new(config.dram),
            icnt_latency: config.icnt_latency,
            events: BinaryHeap::new(),
            seq: 0,
            waiting: HashMap::new(),
            drop_nth_completion: None,
            completions_delivered: 0,
            stats: Counters::new(),
        }
    }

    /// Fault injection: silently swallow the `n`th (1-based) completion
    /// this backend would deliver, modelling a lost MSHR wakeup. The drop
    /// is recorded under `mem.injected_drops` (a counter that stays absent
    /// on healthy runs, keeping golden key sets unchanged).
    pub fn inject_drop_nth_completion(&mut self, n: u64) {
        self.drop_nth_completion = Some(n);
    }

    /// Routes one finished completion to `done`, unless it is the injected
    /// drop victim.
    fn deliver(&mut self, id: u64, at: u64, done: &mut Vec<(u64, u64)>) {
        self.completions_delivered += 1;
        if self.drop_nth_completion == Some(self.completions_delivered) {
            self.stats.inc("mem.injected_drops");
            return;
        }
        self.stats.inc("icnt.from_l2");
        done.push((id, at));
    }

    fn push(&mut self, time: u64, kind: EvKind) {
        self.seq += 1;
        self.events.push(Reverse(Ev {
            time,
            seq: self.seq,
            kind,
        }));
    }

    /// Submits a request at `now`; its completion arrives through
    /// [`SharedMemSystem::advance_to`].
    pub fn submit(&mut self, req: MemRequest, now: u64) {
        self.stats.inc("icnt.to_l2");
        self.push(now + self.icnt_latency as u64, EvKind::ArriveL2(req));
    }

    /// Processes all backend events up to and including `cycle`; returns
    /// `(request id, completion cycle)` pairs.
    pub fn advance_to(&mut self, cycle: u64) -> Vec<(u64, u64)> {
        let mut done = Vec::new();
        while let Some(Reverse(ev)) = self.events.peek().copied() {
            if ev.time > cycle {
                break;
            }
            self.events.pop();
            match ev.kind {
                EvKind::ArriveL2(req) => self.handle_l2(req, ev.time, &mut done),
                EvKind::DramDone { line } => {
                    let t = ev.time;
                    self.l2.fill(line, t);
                    if let Some(ids) = self.waiting.remove(&line) {
                        for id in ids {
                            self.deliver(id, t + self.icnt_latency as u64, &mut done);
                        }
                    }
                }
            }
        }
        done
    }

    fn handle_l2(&mut self, req: MemRequest, t: u64, done: &mut Vec<(u64, u64)>) {
        let kind = if req.is_store {
            AccessKind::ShaderStore
        } else {
            req.kind
        };
        let line = self.l2.line_of(req.addr);
        match self.l2.access(req.addr, kind, t) {
            CacheOutcome::Hit => {
                if req.is_store {
                    // Write-through: generate DRAM traffic but ack now.
                    self.dram
                        .service(req.addr, t + self.l2.hit_latency() as u64);
                    self.stats.inc("dram.writes");
                }
                self.deliver(
                    req.id,
                    t + self.l2.hit_latency() as u64 + self.icnt_latency as u64,
                    done,
                );
            }
            CacheOutcome::MissToMemory => {
                self.waiting.entry(line).or_default().push(req.id);
                let ready = self
                    .dram
                    .service(req.addr, t + self.l2.hit_latency() as u64);
                self.stats.inc("dram.reads");
                self.push(ready, EvKind::DramDone { line });
            }
            CacheOutcome::MissMerged => {
                self.waiting.entry(line).or_default().push(req.id);
            }
            CacheOutcome::ReservationFail => {
                // Retry after a short backoff.
                self.stats.inc("l2.retry");
                self.push(t + 4, EvKind::ArriveL2(req));
            }
        }
    }

    /// The shared L2 (for statistics reporting).
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The DRAM array (for statistics reporting).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Enables (or disables) DRAM row-activate event recording.
    pub fn set_trace(&mut self, enabled: bool) {
        self.dram.set_trace(enabled);
    }

    /// Drains recorded `(cycle, channel, bank)` DRAM row activates.
    pub fn take_row_activates(&mut self) -> Vec<(u64, u32, u32)> {
        self.dram.take_row_activates()
    }

    /// Cumulative traffic totals for interval sampling:
    /// `(l2_hits, l2_misses, dram_requests, dram_transfer_cycles)`.
    pub fn traffic_totals(&self) -> (u64, u64, u64, u64) {
        (
            self.l2.total_hits(),
            self.l2.total_misses(),
            self.dram.stats.get("req"),
            self.dram.transfer_cycles(),
        )
    }

    /// `true` when no events are pending (drain check).
    pub fn is_idle(&self) -> bool {
        self.events.is_empty()
    }
}

impl MemSink for SharedMemSystem {
    fn submit(&mut self, req: MemRequest, now: u64) {
        SharedMemSystem::submit(self, req, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(sys: &mut SharedMemSystem, until: u64) -> Vec<(u64, u64)> {
        sys.advance_to(until)
    }

    #[test]
    fn cold_read_goes_to_dram_then_hits() {
        let mut sys = SharedMemSystem::new(SystemConfig::default());
        sys.submit(
            MemRequest {
                id: 1,
                addr: 0x4000,
                kind: AccessKind::ShaderLoad,
                is_store: false,
            },
            0,
        );
        let done = drain(&mut sys, 100_000);
        assert_eq!(done.len(), 1);
        let (_, t1) = done[0];
        // Cold: must include L2 latency + DRAM.
        assert!(t1 > 160, "cold access too fast: {t1}");
        // Second access to the same line: L2 hit, much faster.
        sys.submit(
            MemRequest {
                id: 2,
                addr: 0x4000,
                kind: AccessKind::ShaderLoad,
                is_store: false,
            },
            t1,
        );
        let done2 = drain(&mut sys, t1 + 100_000);
        let (_, t2) = done2[0];
        assert!(t2 - t1 < t1, "hit {t2} vs cold {t1}");
        assert_eq!(sys.l2().stats.get("shader_load.hit"), 1);
    }

    #[test]
    fn merged_requests_complete_together() {
        let mut sys = SharedMemSystem::new(SystemConfig::default());
        for id in 1..=3 {
            sys.submit(
                MemRequest {
                    id,
                    addr: 0x8000,
                    kind: AccessKind::RtUnit,
                    is_store: false,
                },
                0,
            );
        }
        let done = drain(&mut sys, 100_000);
        assert_eq!(done.len(), 3);
        let t0 = done[0].1;
        assert!(
            done.iter().all(|&(_, t)| t == t0),
            "merged fills complete together"
        );
        // Only one DRAM read happened.
        assert_eq!(sys.dram().stats.get("req"), 1);
    }

    #[test]
    fn stores_ack_fast_but_generate_dram_writes() {
        let mut sys = SharedMemSystem::new(SystemConfig::default());
        sys.submit(
            MemRequest {
                id: 9,
                addr: 0xA000,
                kind: AccessKind::ShaderStore,
                is_store: true,
            },
            0,
        );
        let done = drain(&mut sys, 10_000);
        assert_eq!(done.len(), 1);
        assert_eq!(sys.stats.get("dram.writes"), 1);
        // Store ack does not wait for DRAM.
        assert!(done[0].1 <= 8 + 160 + 8 + 1);
    }

    #[test]
    fn perfect_dram_shortens_misses() {
        let mut fast = SharedMemSystem::new(SystemConfig {
            dram: DramConfig {
                perfect: true,
                ..Default::default()
            },
            ..Default::default()
        });
        let mut slow = SharedMemSystem::new(SystemConfig::default());
        for sys in [&mut fast, &mut slow] {
            sys.submit(
                MemRequest {
                    id: 1,
                    addr: 0x9000,
                    kind: AccessKind::ShaderLoad,
                    is_store: false,
                },
                0,
            );
        }
        let tf = drain(&mut fast, 1_000_000)[0].1;
        let ts = drain(&mut slow, 1_000_000)[0].1;
        assert!(tf < ts);
    }

    #[test]
    fn events_processed_in_time_order() {
        let mut sys = SharedMemSystem::new(SystemConfig::default());
        // Submit in reverse arrival order.
        sys.submit(
            MemRequest {
                id: 2,
                addr: 0x100,
                kind: AccessKind::ShaderLoad,
                is_store: false,
            },
            50,
        );
        sys.submit(
            MemRequest {
                id: 1,
                addr: 0x100,
                kind: AccessKind::ShaderLoad,
                is_store: false,
            },
            0,
        );
        let done = drain(&mut sys, 1_000_000);
        assert_eq!(done.len(), 2);
        assert!(sys.is_idle());
    }

    #[test]
    fn queued_submission_matches_direct_submission() {
        // The two-phase engine's contract: queue-then-drain must be
        // indistinguishable from direct submission, including `seq` order.
        let reqs: Vec<MemRequest> = (0..4)
            .map(|i| MemRequest {
                id: i,
                addr: 0x1000 + i * 0x40,
                kind: AccessKind::ShaderLoad,
                is_store: false,
            })
            .collect();
        let mut direct = SharedMemSystem::new(SystemConfig::default());
        for r in &reqs {
            direct.submit(*r, 3);
        }
        let mut queued = SharedMemSystem::new(SystemConfig::default());
        let mut q = RequestQueue::new();
        for r in &reqs {
            MemSink::submit(&mut q, *r, 3);
        }
        assert_eq!(q.len(), 4);
        q.drain_into(&mut queued);
        assert!(q.is_empty());
        let a = direct.advance_to(1_000_000);
        let b = queued.advance_to(1_000_000);
        assert_eq!(a, b);
        assert_eq!(
            direct.stats.get("icnt.to_l2"),
            queued.stats.get("icnt.to_l2")
        );
    }

    #[test]
    fn injected_drop_swallows_exactly_one_completion() {
        let mut sys = SharedMemSystem::new(SystemConfig::default());
        sys.inject_drop_nth_completion(2);
        for id in 1..=3u64 {
            sys.submit(
                MemRequest {
                    id,
                    addr: 0x1000 * id,
                    kind: AccessKind::ShaderLoad,
                    is_store: false,
                },
                0,
            );
        }
        let done = drain(&mut sys, 1_000_000);
        assert_eq!(done.len(), 2, "the 2nd completion was dropped");
        assert!(done.iter().all(|&(id, _)| id != done_victim(&done)));
        assert_eq!(sys.stats.get("mem.injected_drops"), 1);
        assert_eq!(sys.stats.get("icnt.from_l2"), 2);
        assert!(sys.is_idle(), "backend drains even with the drop");
    }

    /// The id absent from `done` among 1..=3.
    fn done_victim(done: &[(u64, u64)]) -> u64 {
        (1..=3u64)
            .find(|id| !done.iter().any(|&(d, _)| d == *id))
            .unwrap()
    }

    #[test]
    fn advance_to_respects_cycle_bound() {
        let mut sys = SharedMemSystem::new(SystemConfig::default());
        sys.submit(
            MemRequest {
                id: 1,
                addr: 0x100,
                kind: AccessKind::ShaderLoad,
                is_store: false,
            },
            0,
        );
        // Nothing can be complete after 1 cycle.
        assert!(sys.advance_to(1).is_empty());
        assert!(!sys.is_idle());
    }
}
