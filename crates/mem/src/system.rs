//! Partitioned L2 + interconnect + DRAM backend.
//!
//! All SMs' L1 misses funnel through one [`SharedMemSystem`] (paper Fig. 3:
//! SMs connect to memory partitions through an on-chip interconnect). The
//! backend is organised as `num_partitions` independent *memory
//! partitions*, each owning an L2 slice and a DRAM channel group —
//! addresses interleave across partitions at 128 B granularity
//! ([`partition_of`]). The model is event-driven: producers
//! [`SharedMemSystem::submit`] chunk-sized requests and poll
//! [`SharedMemSystem::advance_to`] each core cycle for completions.
//!
//! # Determinism
//!
//! The interconnect is a fixed-latency hop; each partition keeps its own
//! event heap ordered by `(time, seq)` where `seq` is assigned in submit
//! order. The two-phase cycle engine drains per-SM request queues serially
//! in SM-id order, so the ingress order of every partition — and therefore
//! every counter — is bit-exact at any `VKSIM_THREADS` value. With
//! `num_partitions = 1` the backend is structurally identical to the
//! historical monolithic L2, which keeps pre-partitioning goldens
//! byte-identical.

use crate::cache::{AccessKind, Cache, CacheConfig, CacheOutcome};
use crate::dram::{Dram, DramConfig, DramIssue};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use vksim_stats::Counters;

/// Partition interleave granularity: consecutive 128 B lines map to
/// consecutive partitions.
pub const PARTITION_BYTES: u64 = 128;

/// The memory partition an address belongs to. Total over all addresses
/// and balanced: every 128 B line maps to exactly one partition, and
/// consecutive lines rotate through all partitions.
pub fn partition_of(addr: u64, num_partitions: u32) -> u32 {
    debug_assert!(num_partitions >= 1, "degenerate partition count");
    ((addr / PARTITION_BYTES) % num_partitions as u64) as u32
}

/// Configuration of the shared memory backend.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// The unified L2 cache (total capacity; sliced across partitions).
    pub l2: CacheConfig,
    /// DRAM behind the L2 (total channels; grouped across partitions).
    pub dram: DramConfig,
    /// One-way interconnect latency in cycles (SM <-> partition, one hop).
    pub icnt_latency: u32,
    /// Number of independent memory partitions (each an L2 slice plus a
    /// DRAM channel group). `1` reproduces the monolithic backend.
    pub num_partitions: u32,
    /// Per-partition ingress-queue depth (requests in flight towards or
    /// queued at one partition). `0` models an unbounded interconnect —
    /// the historical fixed-latency hop; goldens are recorded against it.
    /// A finite depth makes [`SharedMemSystem::try_submit`] refuse
    /// requests to a full partition, and arms the DRAM-side bank-queue
    /// backpressure.
    pub icnt_queue_depth: u32,
    /// Return-path (partition -> SM) credits per partition: the number of
    /// completions that may be on the return wire simultaneously. `0`
    /// models an unbounded return path (the historical behaviour).
    pub icnt_return_credits: u32,
}

/// The name the memory-partition config goes by in the paper-scale
/// experiment plumbing.
pub type MemConfig = SystemConfig;

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            l2: CacheConfig::l2_baseline(),
            dram: DramConfig::default(),
            icnt_latency: 8,
            num_partitions: 1,
            icnt_queue_depth: 0,
            icnt_return_credits: 0,
        }
    }
}

/// One 32 B memory request from an SM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRequest {
    /// Caller-chosen identifier returned on completion.
    pub id: u64,
    /// Chunk-aligned address.
    pub addr: u64,
    /// Source tag for cache statistics.
    pub kind: AccessKind,
    /// `true` for (write-through) stores.
    pub is_store: bool,
}

impl MemRequest {
    /// Serializes the request for a machine-state snapshot.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.u64(self.id);
        e.u64(self.addr);
        e.u8(self.kind.code());
        e.bool(self.is_store);
    }

    /// Restores a request written by [`MemRequest::save`].
    ///
    /// # Errors
    ///
    /// Propagates decoder errors; an unknown access-kind code is
    /// malformed.
    pub fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        Ok(MemRequest {
            id: d.u64()?,
            addr: d.u64()?,
            kind: AccessKind::from_code(d.u8()?)?,
            is_store: d.bool()?,
        })
    }
}

/// Anything that accepts timed [`MemRequest`]s.
///
/// The SM pipeline is written against this trait so the same tick code runs
/// in two regimes:
///
/// * serial reference path — the sink *is* the [`SharedMemSystem`] and the
///   request enters the event heap immediately;
/// * two-phase cycle engine — the sink is a per-SM [`RequestQueue`]; the
///   coordinator later drains the queues serially in SM-id order, which
///   reproduces the exact submit order (and `seq` numbering) of the serial
///   path regardless of worker-thread count.
pub trait MemSink {
    /// Accepts a request issued at cycle `now`.
    fn submit(&mut self, req: MemRequest, now: u64);

    /// Offers a request issued at cycle `now`; a bounded sink may refuse
    /// it (returning `false`) when the target buffer is full, in which
    /// case the caller keeps ownership and must re-offer later. The
    /// default accepts unconditionally.
    fn try_submit(&mut self, req: MemRequest, now: u64) -> bool {
        self.submit(req, now);
        true
    }

    /// `true` while previously accepted requests are still waiting to
    /// enter the backend — the backpressure signal a producer polls
    /// before issuing new memory instructions.
    fn backlogged(&self) -> bool {
        false
    }
}

/// An ordered buffer of outbound memory requests from one SM for one cycle.
///
/// Order of insertion is preserved; [`RequestQueue::drain_into`] forwards
/// the requests to the shared backend in that order.
#[derive(Clone, Debug, Default)]
pub struct RequestQueue {
    items: Vec<(MemRequest, u64)>,
}

impl RequestQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Serializes the queue contents — requests still awaiting interconnect
    /// acceptance at a cycle boundary (bounded-icnt backpressure carries
    /// them across cycles) — in insertion order.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.seq(self.items.len());
        for (req, now) in &self.items {
            req.save(e);
            e.u64(*now);
        }
    }

    /// Restores a queue written by [`RequestQueue::save`].
    ///
    /// # Errors
    ///
    /// Propagates decoder errors on truncated or malformed payloads.
    pub fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        let n = d.seq()?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            let req = MemRequest::load(d)?;
            items.push((req, d.u64()?));
        }
        Ok(RequestQueue { items })
    }

    /// Forwards queued requests to `sink` in insertion order, stopping at
    /// the first refusal (head-of-line blocking preserves the global
    /// submission order); refused requests stay queued for the next
    /// drain. An unbounded sink always drains the queue completely.
    pub fn drain_into(&mut self, sink: &mut dyn MemSink) {
        let mut accepted = 0;
        for &(req, now) in &self.items {
            if !sink.try_submit(req, now) {
                break;
            }
            accepted += 1;
        }
        self.items.drain(..accepted);
    }
}

impl MemSink for RequestQueue {
    fn submit(&mut self, req: MemRequest, now: u64) {
        self.items.push((req, now));
    }

    /// Leftovers from the previous drain mean the interconnect refused
    /// at least one request: the owning SM must stall its issue stage.
    fn backlogged(&self) -> bool {
        !self.items.is_empty()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EvKind {
    ArriveL2(MemRequest),
    DramDone {
        line: u64,
    },
    /// A DRAM bank queue was full (bounded mode only): re-offer the
    /// access after a short backoff, exactly like an L2 reservation fail.
    RetryDram {
        addr: u64,
        line: u64,
        is_store: bool,
    },
}

impl EvKind {
    fn save(&self, e: &mut vksim_snapshot::Enc) {
        match *self {
            EvKind::ArriveL2(req) => {
                e.u8(0);
                req.save(e);
            }
            EvKind::DramDone { line } => {
                e.u8(1);
                e.u64(line);
            }
            EvKind::RetryDram {
                addr,
                line,
                is_store,
            } => {
                e.u8(2);
                e.u64(addr);
                e.u64(line);
                e.bool(is_store);
            }
        }
    }

    fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        Ok(match d.u8()? {
            0 => EvKind::ArriveL2(MemRequest::load(d)?),
            1 => EvKind::DramDone { line: d.u64()? },
            2 => EvKind::RetryDram {
                addr: d.u64()?,
                line: d.u64()?,
                is_store: d.bool()?,
            },
            t => {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "partition event tag {t}"
                )))
            }
        })
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Ev {
    time: u64,
    seq: u64,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One memory partition: an L2 slice, a DRAM channel group and the
/// partition-local event machinery (its deterministic ingress queue).
#[derive(Debug)]
struct Partition {
    l2: Cache,
    dram: Dram,
    events: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    waiting: HashMap<u64, Vec<u64>>,
    /// FR-FCFS tickets for in-flight reads: ticket -> L2 line to fill.
    tickets: HashMap<u64, u64>,
    /// Requests accepted into this partition's ingress (on the wire or
    /// queued at the L2 slice) and not yet handed to the L2. Bounded by
    /// `icnt_queue_depth` when that knob is finite.
    ingress_occupancy: u32,
    /// Time of the last event this partition processed. Requests that sat
    /// refused in an SM queue carry a stale issue timestamp; acceptance
    /// clamps their arrival here so partition event (and therefore DRAM
    /// arrival) order stays nondecreasing. Never ahead of any live
    /// submission on the unbounded path, where producers submit at the
    /// current cycle.
    last_event_time: u64,
    /// Return-path credits: `egress_free[i]` is the cycle credit `i`
    /// frees up. Empty = unbounded return path (credits disabled).
    egress_free: Vec<u64>,
}

impl Partition {
    fn push(&mut self, time: u64, kind: EvKind) {
        self.seq += 1;
        self.events.push(Reverse(Ev {
            time,
            seq: self.seq,
            kind,
        }));
    }

    /// Serializes the partition's dynamic state. The event heap is written
    /// in `(time, seq)` order and the waiter/ticket maps sorted by key, so
    /// re-encoding a restored partition is byte-identical.
    fn save(&self, e: &mut vksim_snapshot::Enc) {
        self.l2.save(e);
        self.dram.save(e);
        let mut evs: Vec<Ev> = self.events.iter().map(|r| r.0).collect();
        evs.sort_unstable_by_key(|ev| (ev.time, ev.seq));
        e.seq(evs.len());
        for ev in &evs {
            e.u64(ev.time);
            e.u64(ev.seq);
            ev.kind.save(e);
        }
        e.u64(self.seq);
        let mut waiting: Vec<(&u64, &Vec<u64>)> = self.waiting.iter().collect();
        waiting.sort_unstable_by_key(|(line, _)| **line);
        e.seq(waiting.len());
        for (line, ids) in waiting {
            e.u64(*line);
            e.seq(ids.len());
            for id in ids {
                e.u64(*id);
            }
        }
        let mut tickets: Vec<(u64, u64)> = self.tickets.iter().map(|(k, v)| (*k, *v)).collect();
        tickets.sort_unstable();
        e.seq(tickets.len());
        for (ticket, line) in tickets {
            e.u64(ticket);
            e.u64(line);
        }
        e.u32(self.ingress_occupancy);
        e.u64(self.last_event_time);
        e.seq(self.egress_free.len());
        for &t in &self.egress_free {
            e.u64(t);
        }
    }

    /// Restores dynamic state written by [`Partition::save`] into a
    /// partition freshly built from the resuming configuration. The L2
    /// slice and DRAM group configs come from `self`; the snapshot only
    /// carries the mutable state.
    fn load_into(
        &mut self,
        d: &mut vksim_snapshot::Dec<'_>,
    ) -> Result<(), vksim_snapshot::SnapError> {
        self.l2 = Cache::load(self.l2.config().clone(), d)?;
        self.dram = Dram::load(self.dram.config().clone(), d)?;
        let n = d.seq()?;
        self.events = BinaryHeap::with_capacity(n);
        for _ in 0..n {
            let time = d.u64()?;
            let seq = d.u64()?;
            self.events.push(Reverse(Ev {
                time,
                seq,
                kind: EvKind::load(d)?,
            }));
        }
        self.seq = d.u64()?;
        let nw = d.seq()?;
        self.waiting = HashMap::with_capacity(nw);
        for _ in 0..nw {
            let line = d.u64()?;
            let ni = d.seq()?;
            let mut ids = Vec::with_capacity(ni);
            for _ in 0..ni {
                ids.push(d.u64()?);
            }
            self.waiting.insert(line, ids);
        }
        let nt = d.seq()?;
        self.tickets = HashMap::with_capacity(nt);
        for _ in 0..nt {
            let ticket = d.u64()?;
            self.tickets.insert(ticket, d.u64()?);
        }
        self.ingress_occupancy = d.u32()?;
        self.last_event_time = d.u64()?;
        let ne = d.seq()?;
        if ne != self.egress_free.len() {
            return Err(vksim_snapshot::SnapError::Malformed(format!(
                "snapshot has {ne} return credits, {} configured",
                self.egress_free.len()
            )));
        }
        for slot in self.egress_free.iter_mut() {
            *slot = d.u64()?;
        }
        Ok(())
    }
}

/// Routes one finished completion to `done`, unless it is the injected
/// drop victim. Delivery order is global across partitions (partition
/// index, then event order), so the drop victim is deterministic.
///
/// `ready` is the cycle the data is ready at the partition's egress port;
/// the completion reaches the SM one interconnect hop later. With return
/// credits enabled (`egress` nonempty) the completion must additionally
/// claim the earliest-free credit, which can delay its departure — the
/// credit frees when the flit lands at the SM. An empty `egress` is the
/// unbounded historical return path.
#[allow(clippy::too_many_arguments)]
fn deliver(
    stats: &mut Counters,
    drop_nth: Option<u64>,
    delivered: &mut u64,
    egress: &mut [u64],
    icnt: u64,
    id: u64,
    ready: u64,
    done: &mut Vec<(u64, u64)>,
) {
    *delivered += 1;
    if drop_nth == Some(*delivered) {
        stats.inc("mem.injected_drops");
        return;
    }
    stats.inc("icnt.from_l2");
    let at = if egress.is_empty() {
        ready + icnt
    } else {
        let (idx, free_at) = egress
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(i, t)| (t, i))
            .expect("nonempty credit array");
        let arrive = ready.max(free_at) + icnt;
        egress[idx] = arrive;
        arrive
    };
    done.push((id, at));
}

/// The partitioned L2/DRAM system.
///
/// # Example
///
/// ```
/// use vksim_mem::{SharedMemSystem, SystemConfig, MemRequest, AccessKind};
/// let mut sys = SharedMemSystem::new(SystemConfig::default());
/// sys.submit(MemRequest { id: 1, addr: 0x1000, kind: AccessKind::ShaderLoad, is_store: false }, 0);
/// let mut done = Vec::new();
/// let mut t = 0;
/// while done.is_empty() {
///     t += 1;
///     done.extend(sys.advance_to(t));
/// }
/// assert_eq!(done[0].0, 1);
/// ```
#[derive(Debug)]
pub struct SharedMemSystem {
    parts: Vec<Partition>,
    icnt_latency: u32,
    /// Ingress bound per partition (`0` = unbounded).
    icnt_queue_depth: u32,
    /// Fault injection: silently drop the Nth (1-based) completion.
    drop_nth_completion: Option<u64>,
    /// Completions delivered so far (drives `drop_nth_completion`).
    completions_delivered: u64,
    /// Interconnect / backend traffic counters.
    pub stats: Counters,
}

impl SharedMemSystem {
    /// Creates an idle backend with `config.num_partitions` partitions.
    ///
    /// Each partition's L2 slice gets `1/num_partitions` of the configured
    /// capacity and MSHRs ([`CacheConfig::sliced`]); each DRAM channel
    /// group gets `1/num_partitions` of the channels (at least one).
    ///
    /// # Panics
    ///
    /// Panics on a zero-partition configuration.
    pub fn new(config: SystemConfig) -> Self {
        let n = config.num_partitions;
        assert!(n >= 1, "degenerate partition count");
        let dram_cfg = DramConfig {
            channels: (config.dram.channels / n).max(1),
            ..config.dram
        };
        let parts = (0..n)
            .map(|_| Partition {
                l2: Cache::new(config.l2.sliced(n)),
                dram: Dram::new(dram_cfg.clone()),
                events: BinaryHeap::new(),
                seq: 0,
                waiting: HashMap::new(),
                tickets: HashMap::new(),
                ingress_occupancy: 0,
                last_event_time: 0,
                egress_free: vec![0; config.icnt_return_credits as usize],
            })
            .collect();
        SharedMemSystem {
            parts,
            icnt_latency: config.icnt_latency,
            icnt_queue_depth: config.icnt_queue_depth,
            drop_nth_completion: None,
            completions_delivered: 0,
            stats: Counters::new(),
        }
    }

    /// Number of memory partitions.
    pub fn num_partitions(&self) -> u32 {
        self.parts.len() as u32
    }

    /// Fault injection: silently swallow the `n`th (1-based) completion
    /// this backend would deliver, modelling a lost MSHR wakeup. The drop
    /// is recorded under `mem.injected_drops` (a counter that stays absent
    /// on healthy runs, keeping golden key sets unchanged).
    pub fn inject_drop_nth_completion(&mut self, n: u64) {
        self.drop_nth_completion = Some(n);
    }

    /// Submits a request at `now`; its completion arrives through
    /// [`SharedMemSystem::advance_to`]. The request is routed to its
    /// address's partition over the interconnect hop, bypassing any
    /// ingress bound (use [`SharedMemSystem::try_submit`] for the
    /// refusable, credit-checked path).
    pub fn submit(&mut self, req: MemRequest, now: u64) {
        let pi = partition_of(req.addr, self.parts.len() as u32) as usize;
        self.accept(pi, req, now);
    }

    /// Offers a request at `now`. With a finite `icnt_queue_depth` a full
    /// target partition refuses the request (counted under
    /// `icnt.refused`) and the caller must re-offer later; with the
    /// unbounded default this is exactly [`SharedMemSystem::submit`].
    pub fn try_submit(&mut self, req: MemRequest, now: u64) -> bool {
        let pi = partition_of(req.addr, self.parts.len() as u32) as usize;
        if self.icnt_queue_depth > 0 && self.parts[pi].ingress_occupancy >= self.icnt_queue_depth {
            self.stats.inc("icnt.refused");
            return false;
        }
        self.accept(pi, req, now);
        true
    }

    /// Accepts a request into partition `pi`'s ingress. `icnt.to_l2`
    /// counts acceptances only — refused offers are not traffic.
    fn accept(&mut self, pi: usize, req: MemRequest, now: u64) {
        self.stats.inc("icnt.to_l2");
        let p = &mut self.parts[pi];
        let at = (now + self.icnt_latency as u64).max(p.last_event_time);
        p.ingress_occupancy += 1;
        p.push(at, EvKind::ArriveL2(req));
    }

    /// Requests currently occupying `partition`'s ingress (on the wire or
    /// queued at the L2 slice). Never exceeds a finite
    /// `icnt_queue_depth`; exposed for the backpressure property tests.
    pub fn ingress_occupancy(&self, partition: u32) -> u32 {
        self.parts[partition as usize].ingress_occupancy
    }

    /// Processes all backend events up to and including `cycle`; returns
    /// `(request id, completion cycle)` pairs. Partitions are processed in
    /// index order, each one in `(time, seq)` event order — a fixed,
    /// thread-count-independent order.
    pub fn advance_to(&mut self, cycle: u64) -> Vec<(u64, u64)> {
        let mut done = Vec::new();
        let icnt = self.icnt_latency as u64;
        let bounded = self.icnt_queue_depth > 0;
        for pi in 0..self.parts.len() {
            let SharedMemSystem {
                parts,
                stats,
                drop_nth_completion,
                completions_delivered,
                ..
            } = self;
            let p = &mut parts[pi];
            loop {
                // Finalize FR-FCFS scheduling decisions up to the next
                // event (or `cycle`); redeemed read tickets become
                // DramDone events at their completion cycle.
                let horizon = match p.events.peek() {
                    Some(&Reverse(ev)) if ev.time <= cycle => ev.time,
                    _ => cycle,
                };
                let scheduled = p.dram.run_schedule(horizon);
                if !scheduled.is_empty() {
                    for (ticket, ready) in scheduled {
                        if let Some(line) = p.tickets.remove(&ticket) {
                            p.push(ready, EvKind::DramDone { line });
                        }
                    }
                    continue;
                }
                let Some(&Reverse(ev)) = p.events.peek() else {
                    break;
                };
                if ev.time > cycle {
                    break;
                }
                p.events.pop();
                p.last_event_time = ev.time;
                match ev.kind {
                    EvKind::ArriveL2(req) => handle_l2(
                        p,
                        stats,
                        *drop_nth_completion,
                        completions_delivered,
                        icnt,
                        bounded,
                        req,
                        ev.time,
                        &mut done,
                    ),
                    EvKind::DramDone { line } => {
                        let t = ev.time;
                        p.l2.fill(line, t);
                        if let Some(ids) = p.waiting.remove(&line) {
                            for id in ids {
                                deliver(
                                    stats,
                                    *drop_nth_completion,
                                    completions_delivered,
                                    &mut p.egress_free,
                                    icnt,
                                    id,
                                    t,
                                    &mut done,
                                );
                            }
                        }
                    }
                    EvKind::RetryDram {
                        addr,
                        line,
                        is_store,
                    } => {
                        // Re-offer at the same arrival offset the regular
                        // L2-miss path uses, so DRAM arrival cycles stay
                        // nondecreasing across event order.
                        let t = ev.time;
                        let at = t + p.l2.hit_latency() as u64;
                        submit_dram(p, stats, bounded, addr, line, is_store, at, t + 4);
                    }
                }
            }
        }
        done
    }

    /// The first partition's L2 slice (single-partition convenience for
    /// tests; reporting code uses [`SharedMemSystem::l2_stats`]).
    pub fn l2(&self) -> &Cache {
        &self.parts[0].l2
    }

    /// The first partition's DRAM channel group (single-partition
    /// convenience; reporting code uses the merged accessors).
    pub fn dram(&self) -> &Dram {
        &self.parts[0].dram
    }

    /// Merged L2 counters: the sum over partitions under the original key
    /// names, plus per-partition copies under `p{i}.*` when more than one
    /// partition exists (so single-partition golden key sets are
    /// unchanged).
    pub fn l2_stats(&self) -> Counters {
        merge_partition_stats(self.parts.iter().map(|p| &p.l2.stats))
    }

    /// Merged DRAM counters, same key scheme as
    /// [`SharedMemSystem::l2_stats`].
    pub fn dram_stats(&self) -> Counters {
        merge_partition_stats(self.parts.iter().map(|p| &p.dram.stats))
    }

    /// DRAM efficiency aggregated across partitions, weighted by cycles:
    /// total transfer cycles over total active cycles (*not* the mean of
    /// per-partition ratios, which would overweight idle partitions).
    pub fn dram_efficiency(&self) -> f64 {
        let transfer: u64 = self.parts.iter().map(|p| p.dram.transfer_cycles()).sum();
        let active: u64 = self.parts.iter().map(|p| p.dram.active_cycles()).sum();
        if active == 0 {
            0.0
        } else {
            transfer as f64 / active as f64
        }
    }

    /// DRAM utilization aggregated across partitions: total transfer
    /// cycles over `total_cycles` × total channels.
    pub fn dram_utilization(&self, total_cycles: u64) -> f64 {
        let transfer: u64 = self.parts.iter().map(|p| p.dram.transfer_cycles()).sum();
        let channels: u64 = self
            .parts
            .iter()
            .map(|p| p.dram.config().channels as u64)
            .sum();
        if total_cycles == 0 || channels == 0 {
            0.0
        } else {
            transfer as f64 / (total_cycles * channels) as f64
        }
    }

    /// Row-buffer hit rate aggregated across partitions, weighted by
    /// requests: total row hits over total requests.
    pub fn dram_row_hit_rate(&self) -> f64 {
        let hits: u64 = self.parts.iter().map(|p| p.dram.stats.get("row_hit")).sum();
        let reqs: u64 = self.parts.iter().map(|p| p.dram.stats.get("req")).sum();
        if reqs == 0 {
            0.0
        } else {
            hits as f64 / reqs as f64
        }
    }

    /// Enables (or disables) DRAM row-activate event recording on every
    /// partition.
    pub fn set_trace(&mut self, enabled: bool) {
        for p in &mut self.parts {
            p.dram.set_trace(enabled);
        }
    }

    /// Drains recorded `(cycle, partition, channel, bank)` DRAM row
    /// activates. The channel index is global (partition-base plus the
    /// channel within the partition's group); events come out in partition
    /// order, chronological within a partition — a deterministic order.
    pub fn take_row_activates(&mut self) -> Vec<(u64, u32, u32, u32)> {
        let mut out = Vec::new();
        let mut base = 0u32;
        for (pi, p) in self.parts.iter_mut().enumerate() {
            let nch = p.dram.config().channels;
            out.extend(
                p.dram
                    .take_row_activates()
                    .into_iter()
                    .map(|(cycle, ch, bank)| (cycle, pi as u32, base + ch, bank)),
            );
            base += nch;
        }
        out
    }

    /// Cumulative traffic totals for interval sampling, summed over
    /// partitions:
    /// `(l2_hits, l2_misses, dram_requests, dram_transfer_cycles)`.
    pub fn traffic_totals(&self) -> (u64, u64, u64, u64) {
        self.parts.iter().fold((0, 0, 0, 0), |acc, p| {
            (
                acc.0 + p.l2.total_hits(),
                acc.1 + p.l2.total_misses(),
                acc.2 + p.dram.stats.get("req"),
                acc.3 + p.dram.transfer_cycles(),
            )
        })
    }

    /// Serializes the whole backend — every partition's L2 slice, DRAM
    /// group, event heap, waiter/ticket maps, ingress occupancy and return
    /// credits, plus the delivery counter that drives fault injection and
    /// the interconnect statistics — for a machine-state snapshot.
    /// Configuration is not written; it is rebuilt from the resuming
    /// [`SystemConfig`] (guaranteed equal by the snapshot fingerprint).
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.seq(self.parts.len());
        for p in &self.parts {
            p.save(e);
        }
        e.opt_u64(self.drop_nth_completion);
        e.u64(self.completions_delivered);
        self.stats.save(e);
    }

    /// Restores a backend written by [`SharedMemSystem::save`] into a
    /// fresh instance built from `config`.
    ///
    /// # Errors
    ///
    /// A partition count (or per-partition geometry) that disagrees with
    /// `config` is a mismatched snapshot.
    pub fn load(
        config: SystemConfig,
        d: &mut vksim_snapshot::Dec<'_>,
    ) -> Result<Self, vksim_snapshot::SnapError> {
        let mut sys = SharedMemSystem::new(config);
        let n = d.seq()?;
        if n != sys.parts.len() {
            return Err(vksim_snapshot::SnapError::Malformed(format!(
                "snapshot has {n} memory partitions, {} configured",
                sys.parts.len()
            )));
        }
        for p in sys.parts.iter_mut() {
            p.load_into(d)?;
        }
        sys.drop_nth_completion = d.opt_u64()?;
        sys.completions_delivered = d.u64()?;
        sys.stats = Counters::load(d)?;
        Ok(sys)
    }

    /// `true` when no events or queued DRAM requests are pending in any
    /// partition (drain check).
    pub fn is_idle(&self) -> bool {
        self.parts
            .iter()
            .all(|p| p.events.is_empty() && !p.dram.has_queued())
    }
}

/// Sums counter bags over partitions, adding `p{i}.*` copies when more
/// than one partition exists.
fn merge_partition_stats<'a>(bags: impl ExactSizeIterator<Item = &'a Counters>) -> Counters {
    let multi = bags.len() > 1;
    let mut out = Counters::new();
    for (i, bag) in bags.enumerate() {
        out.merge(bag);
        if multi {
            for (k, v) in bag.iter() {
                out.add(&format!("p{i}.{k}"), v);
            }
        }
    }
    out
}

/// One L2-slice access: hit, miss to the partition's DRAM group, MSHR
/// merge, or retry. Every outcome except a reservation fail frees the
/// request's ingress slot (a failed reservation keeps the request queued
/// at the partition, so the slot stays held across the backoff).
#[allow(clippy::too_many_arguments)]
fn handle_l2(
    p: &mut Partition,
    stats: &mut Counters,
    drop_nth: Option<u64>,
    delivered: &mut u64,
    icnt: u64,
    bounded: bool,
    req: MemRequest,
    t: u64,
    done: &mut Vec<(u64, u64)>,
) {
    let kind = if req.is_store {
        AccessKind::ShaderStore
    } else {
        req.kind
    };
    let line = p.l2.line_of(req.addr);
    match p.l2.access(req.addr, kind, t) {
        CacheOutcome::Hit => {
            p.ingress_occupancy -= 1;
            if req.is_store {
                // Write-through: generate DRAM traffic but ack now. Under
                // FR-FCFS the write occupies queue and bus without a
                // waiter: its ticket is never mapped, so the scheduled
                // completion is discarded.
                submit_dram(
                    p,
                    stats,
                    bounded,
                    req.addr,
                    line,
                    true,
                    t + p.l2.hit_latency() as u64,
                    t + 4,
                );
            }
            deliver(
                stats,
                drop_nth,
                delivered,
                &mut p.egress_free,
                icnt,
                req.id,
                t + p.l2.hit_latency() as u64,
                done,
            );
        }
        CacheOutcome::MissToMemory => {
            p.ingress_occupancy -= 1;
            p.waiting.entry(line).or_default().push(req.id);
            stats.inc("dram.reads");
            submit_dram(
                p,
                stats,
                bounded,
                req.addr,
                line,
                false,
                t + p.l2.hit_latency() as u64,
                t + 4,
            );
        }
        CacheOutcome::MissMerged => {
            p.ingress_occupancy -= 1;
            p.waiting.entry(line).or_default().push(req.id);
        }
        CacheOutcome::ReservationFail => {
            // Retry after a short backoff.
            stats.inc("l2.retry");
            p.push(t + 4, EvKind::ArriveL2(req));
        }
    }
}

/// Hands one access to the partition's DRAM group. Unbounded mode submits
/// unconditionally (the historical path); bounded mode offers via
/// [`Dram::try_submit`] and, when the target bank queue is full, counts a
/// `dram.bank_full_retries` and re-offers at `retry_at` through a
/// [`EvKind::RetryDram`] event — the bank back-pressures its L2 slice
/// instead of buffering unboundedly.
#[allow(clippy::too_many_arguments)]
fn submit_dram(
    p: &mut Partition,
    stats: &mut Counters,
    bounded: bool,
    addr: u64,
    line: u64,
    is_store: bool,
    at: u64,
    retry_at: u64,
) {
    let issue = if bounded {
        p.dram.try_submit(addr, at)
    } else {
        Some(p.dram.submit(addr, at))
    };
    match issue {
        None => {
            stats.inc("dram.bank_full_retries");
            p.push(
                retry_at,
                EvKind::RetryDram {
                    addr,
                    line,
                    is_store,
                },
            );
        }
        Some(_) if is_store => stats.inc("dram.writes"),
        Some(DramIssue::Done(ready)) => p.push(ready, EvKind::DramDone { line }),
        Some(DramIssue::Queued(ticket)) => {
            p.tickets.insert(ticket, line);
        }
    }
}

impl MemSink for SharedMemSystem {
    fn submit(&mut self, req: MemRequest, now: u64) {
        SharedMemSystem::submit(self, req, now);
    }

    fn try_submit(&mut self, req: MemRequest, now: u64) -> bool {
        SharedMemSystem::try_submit(self, req, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramSched;

    fn drain(sys: &mut SharedMemSystem, until: u64) -> Vec<(u64, u64)> {
        sys.advance_to(until)
    }

    fn load(id: u64, addr: u64) -> MemRequest {
        MemRequest {
            id,
            addr,
            kind: AccessKind::ShaderLoad,
            is_store: false,
        }
    }

    #[test]
    fn cold_read_goes_to_dram_then_hits() {
        let mut sys = SharedMemSystem::new(SystemConfig::default());
        sys.submit(load(1, 0x4000), 0);
        let done = drain(&mut sys, 100_000);
        assert_eq!(done.len(), 1);
        let (_, t1) = done[0];
        // Cold: must include L2 latency + DRAM.
        assert!(t1 > 160, "cold access too fast: {t1}");
        // Second access to the same line: L2 hit, much faster.
        sys.submit(load(2, 0x4000), t1);
        let done2 = drain(&mut sys, t1 + 100_000);
        let (_, t2) = done2[0];
        assert!(t2 - t1 < t1, "hit {t2} vs cold {t1}");
        assert_eq!(sys.l2().stats.get("shader_load.hit"), 1);
    }

    #[test]
    fn merged_requests_complete_together() {
        let mut sys = SharedMemSystem::new(SystemConfig::default());
        for id in 1..=3 {
            sys.submit(
                MemRequest {
                    id,
                    addr: 0x8000,
                    kind: AccessKind::RtUnit,
                    is_store: false,
                },
                0,
            );
        }
        let done = drain(&mut sys, 100_000);
        assert_eq!(done.len(), 3);
        let t0 = done[0].1;
        assert!(
            done.iter().all(|&(_, t)| t == t0),
            "merged fills complete together"
        );
        // Only one DRAM read happened.
        assert_eq!(sys.dram().stats.get("req"), 1);
    }

    #[test]
    fn stores_ack_fast_but_generate_dram_writes() {
        let mut sys = SharedMemSystem::new(SystemConfig::default());
        sys.submit(
            MemRequest {
                id: 9,
                addr: 0xA000,
                kind: AccessKind::ShaderStore,
                is_store: true,
            },
            0,
        );
        let done = drain(&mut sys, 10_000);
        assert_eq!(done.len(), 1);
        assert_eq!(sys.stats.get("dram.writes"), 1);
        // Store ack does not wait for DRAM.
        assert!(done[0].1 <= 8 + 160 + 8 + 1);
    }

    #[test]
    fn perfect_dram_shortens_misses() {
        let mut fast = SharedMemSystem::new(SystemConfig {
            dram: DramConfig {
                perfect: true,
                ..Default::default()
            },
            ..Default::default()
        });
        let mut slow = SharedMemSystem::new(SystemConfig::default());
        for sys in [&mut fast, &mut slow] {
            sys.submit(load(1, 0x9000), 0);
        }
        let tf = drain(&mut fast, 1_000_000)[0].1;
        let ts = drain(&mut slow, 1_000_000)[0].1;
        assert!(tf < ts);
    }

    #[test]
    fn events_processed_in_time_order() {
        let mut sys = SharedMemSystem::new(SystemConfig::default());
        // Submit in reverse arrival order.
        sys.submit(load(2, 0x100), 50);
        sys.submit(load(1, 0x100), 0);
        let done = drain(&mut sys, 1_000_000);
        assert_eq!(done.len(), 2);
        assert!(sys.is_idle());
    }

    #[test]
    fn queued_submission_matches_direct_submission() {
        // The two-phase engine's contract: queue-then-drain must be
        // indistinguishable from direct submission, including `seq` order.
        let reqs: Vec<MemRequest> = (0..4).map(|i| load(i, 0x1000 + i * 0x40)).collect();
        let mut direct = SharedMemSystem::new(SystemConfig::default());
        for r in &reqs {
            direct.submit(*r, 3);
        }
        let mut queued = SharedMemSystem::new(SystemConfig::default());
        let mut q = RequestQueue::new();
        for r in &reqs {
            MemSink::submit(&mut q, *r, 3);
        }
        assert_eq!(q.len(), 4);
        q.drain_into(&mut queued);
        assert!(q.is_empty());
        let a = direct.advance_to(1_000_000);
        let b = queued.advance_to(1_000_000);
        assert_eq!(a, b);
        assert_eq!(
            direct.stats.get("icnt.to_l2"),
            queued.stats.get("icnt.to_l2")
        );
    }

    #[test]
    fn injected_drop_swallows_exactly_one_completion() {
        let mut sys = SharedMemSystem::new(SystemConfig::default());
        sys.inject_drop_nth_completion(2);
        for id in 1..=3u64 {
            sys.submit(load(id, 0x1000 * id), 0);
        }
        let done = drain(&mut sys, 1_000_000);
        assert_eq!(done.len(), 2, "the 2nd completion was dropped");
        assert!(done.iter().all(|&(id, _)| id != done_victim(&done)));
        assert_eq!(sys.stats.get("mem.injected_drops"), 1);
        assert_eq!(sys.stats.get("icnt.from_l2"), 2);
        assert!(sys.is_idle(), "backend drains even with the drop");
    }

    /// The id absent from `done` among 1..=3.
    fn done_victim(done: &[(u64, u64)]) -> u64 {
        (1..=3u64)
            .find(|id| !done.iter().any(|&(d, _)| d == *id))
            .unwrap()
    }

    #[test]
    fn advance_to_respects_cycle_bound() {
        let mut sys = SharedMemSystem::new(SystemConfig::default());
        sys.submit(load(1, 0x100), 0);
        // Nothing can be complete after 1 cycle.
        assert!(sys.advance_to(1).is_empty());
        assert!(!sys.is_idle());
    }

    #[test]
    fn partition_of_is_total_and_rotates_lines() {
        for n in 1..=8u32 {
            for line in 0..32u64 {
                let p = partition_of(line * PARTITION_BYTES, n);
                assert!(p < n);
                assert_eq!(p, (line % n as u64) as u32, "consecutive lines rotate");
                // Every byte of the line maps to the same partition.
                assert_eq!(p, partition_of(line * PARTITION_BYTES + 127, n));
            }
        }
    }

    #[test]
    fn partitions_split_traffic_and_report_per_partition_counters() {
        let mut sys = SharedMemSystem::new(SystemConfig {
            num_partitions: 4,
            ..Default::default()
        });
        assert_eq!(sys.num_partitions(), 4);
        // One request per partition (consecutive 128 B lines).
        for id in 0..4u64 {
            sys.submit(load(id, id * PARTITION_BYTES), 0);
        }
        let done = drain(&mut sys, 1_000_000);
        assert_eq!(done.len(), 4);
        assert!(sys.is_idle());
        let dram = sys.dram_stats();
        assert_eq!(dram.get("req"), 4, "merged totals sum the partitions");
        for i in 0..4 {
            assert_eq!(dram.get(&format!("p{i}.req")), 1, "partition {i}");
        }
        let l2 = sys.l2_stats();
        assert_eq!(l2.get("shader_load.miss_compulsory"), 4);
        assert_eq!(l2.get("p2.shader_load.miss_compulsory"), 1);
        // Independent partitions: all four cold misses complete together.
        assert!(done.iter().all(|&(_, t)| t == done[0].1));
    }

    #[test]
    fn single_partition_omits_per_partition_keys() {
        let mut sys = SharedMemSystem::new(SystemConfig::default());
        sys.submit(load(1, 0x40), 0);
        drain(&mut sys, 1_000_000);
        assert!(
            !sys.dram_stats().iter().any(|(k, _)| k.starts_with("p0.")),
            "golden key sets must not change at num_partitions = 1"
        );
    }

    #[test]
    fn aggregated_dram_rates_are_request_weighted() {
        // Asymmetric load: partition 0 sees 32 requests with high row
        // locality, partition 1 sees 2 requests with none. The aggregate
        // hit rate must be the ratio of sums, not the mean of rates.
        let mut sys = SharedMemSystem::new(SystemConfig {
            num_partitions: 2,
            ..Default::default()
        });
        let mut t = 0;
        for i in 0..32u64 {
            // Partition 0 (even 128 B lines), same row.
            sys.submit(load(i, i * 32 % 128 + (i / 4) * 256), t);
            t += 400;
            let _ = sys.advance_to(t);
        }
        // Partition 1 (odd 128 B lines), two far-apart rows.
        for (j, addr) in [(100u64, 128u64), (101, 128 + 65536)].into_iter() {
            sys.submit(load(j, addr), t);
            t += 4000;
            let _ = sys.advance_to(t);
        }
        assert!(sys.is_idle());
        let s = sys.dram_stats();
        let weighted = (s.get("p0.row_hit") + s.get("p1.row_hit")) as f64
            / (s.get("p0.req") + s.get("p1.req")) as f64;
        assert!((sys.dram_row_hit_rate() - weighted).abs() < 1e-12);
        let p0_rate = s.get("p0.row_hit") as f64 / s.get("p0.req") as f64;
        let p1_rate = s.get("p1.row_hit") as f64 / s.get("p1.req") as f64;
        let naive_mean = (p0_rate + p1_rate) / 2.0;
        assert!(
            (sys.dram_row_hit_rate() - naive_mean).abs() > 0.05,
            "asymmetric load must expose the weighting: weighted {weighted} vs mean {naive_mean}"
        );
    }

    #[test]
    fn fr_fcfs_backend_completes_and_drains() {
        let mut sys = SharedMemSystem::new(SystemConfig {
            num_partitions: 2,
            dram: DramConfig {
                sched: DramSched::fr_fcfs_paper(),
                ..Default::default()
            },
            ..Default::default()
        });
        for id in 0..16u64 {
            sys.submit(load(id, id * 4096 + (id % 2) * PARTITION_BYTES), id);
        }
        let mut done = Vec::new();
        let mut t = 0;
        while !sys.is_idle() && t < 1_000_000 {
            t += 1;
            done.extend(sys.advance_to(t));
        }
        assert_eq!(done.len(), 16, "every FR-FCFS read completes");
        assert!(sys.is_idle());
        assert_eq!(sys.dram_stats().get("req"), 16);
    }

    #[test]
    fn bounded_ingress_refuses_when_full_and_recovers() {
        let mut sys = SharedMemSystem::new(SystemConfig {
            icnt_queue_depth: 2,
            ..Default::default()
        });
        assert!(sys.try_submit(load(1, 0x1000), 0));
        assert!(sys.try_submit(load(2, 0x2000), 0));
        assert_eq!(sys.ingress_occupancy(0), 2);
        assert!(
            !sys.try_submit(load(3, 0x3000), 0),
            "full partition refuses"
        );
        assert_eq!(sys.stats.get("icnt.refused"), 1);
        assert_eq!(sys.stats.get("icnt.to_l2"), 2, "refusals are not traffic");
        // Once the L2 consumes the requests the slots free up.
        let done = drain(&mut sys, 1_000_000);
        assert_eq!(done.len(), 2);
        assert_eq!(sys.ingress_occupancy(0), 0);
        assert!(sys.try_submit(load(3, 0x3000), 1_000_000));
    }

    #[test]
    fn depth_zero_try_submit_never_refuses() {
        let mut sys = SharedMemSystem::new(SystemConfig::default());
        for id in 0..64u64 {
            assert!(sys.try_submit(load(id, id * 0x40), 0));
        }
        assert_eq!(sys.stats.get("icnt.refused"), 0);
        assert_eq!(sys.stats.get("icnt.to_l2"), 64);
    }

    #[test]
    fn return_credits_serialize_simultaneous_completions() {
        // Three merged requests to one line complete together on the
        // unbounded return path; a single return credit spaces their
        // arrivals one interconnect hop apart.
        let run = |credits: u32| {
            let mut sys = SharedMemSystem::new(SystemConfig {
                icnt_return_credits: credits,
                ..Default::default()
            });
            for id in 1..=3 {
                sys.submit(load(id, 0x8000), 0);
            }
            drain(&mut sys, 1_000_000)
        };
        let free = run(0);
        assert!(free.iter().all(|&(_, t)| t == free[0].1));
        let tight = run(1);
        let times: Vec<u64> = tight.iter().map(|&(_, t)| t).collect();
        assert_eq!(times[0], free[0].1, "first completion pays no extra");
        assert_eq!(times[1], times[0] + 8, "second waits for the credit");
        assert_eq!(times[2], times[1] + 8);
    }

    #[test]
    fn bounded_bank_queues_backpressure_and_drain() {
        // A burst of misses to distinct rows of one bank overwhelms a
        // single-entry FR-FCFS bank queue: the bounded backend must retry
        // (counting `dram.bank_full_retries`) yet still complete
        // everything.
        let mut sys = SharedMemSystem::new(SystemConfig {
            icnt_queue_depth: 8,
            dram: DramConfig {
                channels: 1,
                banks_per_channel: 1,
                sched: DramSched::FrFcfs {
                    queue_depth: 1,
                    age_cap: 64,
                },
                ..Default::default()
            },
            ..Default::default()
        });
        let row_bytes = sys.dram().config().row_bytes;
        let mut q = RequestQueue::new();
        for id in 0..8u64 {
            MemSink::submit(&mut q, load(id, id * 16 * row_bytes), 0);
        }
        let mut done = Vec::new();
        let mut t = 0;
        while (!q.is_empty() || !sys.is_idle()) && t < 100_000 {
            q.drain_into(&mut sys);
            t += 1;
            done.extend(sys.advance_to(t));
        }
        assert_eq!(done.len(), 8, "every request completes despite refusals");
        assert!(sys.is_idle());
        assert!(
            sys.stats.get("dram.bank_full_retries") > 0,
            "the single-entry bank queue must have pushed back"
        );
        assert_eq!(sys.dram_stats().get("req"), 8);
    }

    /// Encodes a backend's dynamic state into fresh bytes.
    fn encode(sys: &SharedMemSystem) -> Vec<u8> {
        let mut e = vksim_snapshot::Enc::new();
        sys.save(&mut e);
        e.into_bytes()
    }

    #[test]
    fn backend_snapshot_round_trips_mid_flight() {
        // Freeze a bounded, multi-partition FR-FCFS backend mid-flight —
        // events pending, waiters outstanding, tickets in the scheduler,
        // ingress slots held — and check save -> load -> save is
        // byte-identical and the restored system completes exactly like
        // the original.
        let config = SystemConfig {
            num_partitions: 2,
            icnt_queue_depth: 4,
            icnt_return_credits: 2,
            dram: DramConfig {
                sched: DramSched::fr_fcfs_paper(),
                ..Default::default()
            },
            ..Default::default()
        };
        let mut sys = SharedMemSystem::new(config.clone());
        for id in 0..6u64 {
            sys.try_submit(load(id, id * 4096 + (id % 2) * PARTITION_BYTES), id);
        }
        let mut done = sys.advance_to(40);
        assert!(!sys.is_idle(), "the freeze point must be mid-flight");

        let bytes = encode(&sys);
        let mut d = vksim_snapshot::Dec::new(&bytes);
        let mut restored = SharedMemSystem::load(config, &mut d).expect("restore");
        d.finish().expect("payload fully consumed");
        assert_eq!(encode(&restored), bytes, "re-encode is byte-identical");

        let mut t = 40;
        let mut done_r = done.clone();
        while t < 1_000_000 && (!sys.is_idle() || !restored.is_idle()) {
            t += 1;
            done.extend(sys.advance_to(t));
            done_r.extend(restored.advance_to(t));
        }
        assert_eq!(done.len(), 6);
        assert_eq!(done, done_r, "restored backend completes identically");
        assert_eq!(
            encode(&sys),
            encode(&restored),
            "final states converge byte-identically"
        );
    }

    #[test]
    fn backend_snapshot_rejects_mismatched_geometry() {
        let mut sys = SharedMemSystem::new(SystemConfig {
            num_partitions: 2,
            ..Default::default()
        });
        sys.submit(load(1, 0x40), 0);
        let bytes = encode(&sys);
        let mut d = vksim_snapshot::Dec::new(&bytes);
        let err = SharedMemSystem::load(SystemConfig::default(), &mut d).unwrap_err();
        assert!(matches!(err, vksim_snapshot::SnapError::Malformed(_)));
    }

    #[test]
    fn request_queue_snapshot_preserves_order() {
        let mut q = RequestQueue::new();
        for id in 0..3u64 {
            MemSink::submit(&mut q, load(id, 0x1000 + id * 0x40), 7 + id);
        }
        let mut e = vksim_snapshot::Enc::new();
        q.save(&mut e);
        let bytes = e.into_bytes();
        let mut d = vksim_snapshot::Dec::new(&bytes);
        let restored = RequestQueue::load(&mut d).expect("restore");
        d.finish().expect("consumed");
        let mut e2 = vksim_snapshot::Enc::new();
        restored.save(&mut e2);
        assert_eq!(e2.into_bytes(), bytes);
        assert_eq!(restored.len(), 3);
        assert!(restored.backlogged());
    }

    #[test]
    fn row_activates_carry_partition_and_global_channel() {
        let mut sys = SharedMemSystem::new(SystemConfig {
            num_partitions: 2,
            ..Default::default()
        });
        sys.set_trace(true);
        sys.submit(load(1, 0), 0);
        sys.submit(load(2, PARTITION_BYTES), 0);
        drain(&mut sys, 1_000_000);
        let acts = sys.take_row_activates();
        assert_eq!(acts.len(), 2);
        let parts: Vec<u32> = acts.iter().map(|a| a.1).collect();
        assert_eq!(parts, vec![0, 1]);
        let per_part_channels = sys.dram().config().channels;
        assert!(acts[0].2 < per_part_channels);
        assert!(acts[1].2 >= per_part_channels, "global channel index");
    }
}
