//! Banked DRAM timing model with open-row policy.
//!
//! Models what the Fig. 16 experiment measures: *DRAM efficiency* (cycles
//! transferring data out of cycles with pending requests) and *DRAM
//! utilization* (out of all cycles), plus row-buffer locality. Requests are
//! interleaved across channels by address, and each channel has multiple
//! banks with an open-row policy: a request to the open row pays only CAS
//! latency; otherwise precharge + activate + CAS.
//!
//! Two memory-access schedulers are modelled ([`DramSched`]):
//!
//! * [`DramSched::Fcfs`] — strictly in arrival order (the historical path;
//!   goldens are recorded against it).
//! * [`DramSched::FrFcfs`] — first-ready, first-come-first-served (the
//!   scheduler GPGPU-Sim/Accel-Sim model): a bounded per-bank request
//!   queue where requests hitting the open row are serviced before older
//!   row misses, with an *age cap* as the starvation bound. Once the
//!   oldest request in a channel has waited `age_cap` cycles it is served
//!   next, so every request has a deterministic worst-case service cycle:
//!   with at most `k` older same-channel requests pending at arrival, a
//!   request completes within `age_cap + 2 * max_access * (k + 1)` cycles
//!   of its arrival, where `max_access = t_rp + t_rcd + t_cas +
//!   burst_cycles`. With `age_cap = 0` the age rule fires on every
//!   decision, which degenerates to exactly the FCFS schedule.

use std::collections::VecDeque;
use vksim_stats::Counters;

/// DRAM memory-access scheduling policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DramSched {
    /// In-order service at arrival (the original model; golden continuity).
    #[default]
    Fcfs,
    /// First-ready FCFS with a bounded reorder window and starvation bound.
    FrFcfs {
        /// Per-bank reorder window: only the first `queue_depth` queued
        /// requests of a bank are eligible to bypass older ones.
        queue_depth: u32,
        /// Starvation bound in cycles: once the oldest request of a channel
        /// has waited this long it is unconditionally served next. `0`
        /// reproduces the FCFS schedule cycle-for-cycle.
        age_cap: u64,
    },
}

impl DramSched {
    /// The FR-FCFS configuration used at paper scale (Table III-class
    /// partitions): a 16-deep reorder window and a 2048-cycle age cap.
    pub fn fr_fcfs_paper() -> Self {
        DramSched::FrFcfs {
            queue_depth: 16,
            age_cap: 2048,
        }
    }
}

/// Outcome of [`Dram::submit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DramIssue {
    /// Serviced in-order at submit; data ready at the given cycle.
    Done(u64),
    /// Queued for out-of-order scheduling; the ticket is redeemed by
    /// [`Dram::run_schedule`].
    Queued(u64),
}

/// DRAM geometry and timing (in memory-clock cycles).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of channels (memory partitions).
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Row size in bytes.
    pub row_bytes: u64,
    /// Column access latency (row already open).
    pub t_cas: u64,
    /// Row activate latency.
    pub t_rcd: u64,
    /// Precharge latency.
    pub t_rp: u64,
    /// Cycles the channel data bus is busy per 32 B chunk.
    pub burst_cycles: u64,
    /// Zero-latency mode (the Fig. 15 "Perfect Mem" limit study).
    pub perfect: bool,
    /// Memory-access scheduling policy.
    pub sched: DramSched,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            channels: 6,
            banks_per_channel: 16,
            row_bytes: 2048,
            t_cas: 20,
            t_rcd: 20,
            t_rp: 20,
            burst_cycles: 2,
            perfect: false,
            sched: DramSched::Fcfs,
        }
    }
}

impl DramConfig {
    /// A mobile-class memory system: fewer channels, same timings (the
    /// paper's mobile configuration has less DRAM bandwidth).
    pub fn mobile() -> Self {
        DramConfig {
            channels: 2,
            ..Default::default()
        }
    }

    /// Worst-case single-access occupancy: precharge + activate + CAS +
    /// burst. The FR-FCFS starvation bound is stated in these units.
    pub fn max_access_cycles(&self) -> u64 {
        self.t_rp + self.t_rcd + self.t_cas + self.burst_cycles
    }
}

/// One request queued at a bank, waiting for the FR-FCFS scheduler.
#[derive(Clone, Copy, Debug)]
struct Pending {
    ticket: u64,
    row: u64,
    arrival: u64,
}

#[derive(Clone, Debug, Default)]
struct Bank {
    open_row: Option<u64>,
    ready_at: u64,
    queue: VecDeque<Pending>,
}

#[derive(Clone, Debug, Default)]
struct Channel {
    banks: Vec<Bank>,
    bus_free_at: u64,
    // Union-of-intervals tracking for the efficiency denominator.
    active_window_end: u64,
    active_cycles: u64,
    transfer_cycles: u64,
}

/// The DRAM device array.
///
/// # Example
///
/// ```
/// use vksim_mem::{Dram, DramConfig};
/// let mut d = Dram::new(DramConfig::default());
/// let done = d.service(0x1000, 0);
/// assert!(done > 0);
/// // Same row, immediately after: row hit is cheaper.
/// let done2 = d.service(0x1020, done);
/// assert!(done2 - done < done);
/// ```
#[derive(Clone, Debug)]
pub struct Dram {
    config: DramConfig,
    channels: Vec<Channel>,
    /// Row-hit/miss and traffic counters.
    pub stats: Counters,
    /// Row-activate trace buffer: `(cycle, channel, bank)` per activate
    /// command, recorded only while tracing is enabled.
    row_activates: Option<Vec<(u64, u32, u32)>>,
    /// FR-FCFS ticket counter (0 = no ticket issued yet).
    next_ticket: u64,
    /// Latest arrival cycle seen by [`Dram::submit`] (monotonicity check).
    last_arrival: u64,
}

impl Dram {
    /// Creates an idle DRAM array.
    ///
    /// # Panics
    ///
    /// Panics on a zero-channel or zero-bank configuration, and on an
    /// FR-FCFS configuration with a zero queue depth (a zero-wide reorder
    /// window has no schedulable requests; config validation in
    /// `vksim-core` rejects it with a structured error before it can
    /// reach this assert).
    pub fn new(config: DramConfig) -> Self {
        assert!(
            config.channels > 0 && config.banks_per_channel > 0,
            "degenerate DRAM geometry"
        );
        assert!(
            !matches!(config.sched, DramSched::FrFcfs { queue_depth: 0, .. }),
            "degenerate FR-FCFS queue depth"
        );
        let channels = (0..config.channels)
            .map(|_| Channel {
                banks: vec![Bank::default(); config.banks_per_channel as usize],
                ..Channel::default()
            })
            .collect();
        Dram {
            config,
            channels,
            stats: Counters::new(),
            row_activates: None,
            next_ticket: 0,
            last_arrival: 0,
        }
    }

    /// Enables (or disables) row-activate event recording. Off by default;
    /// the buffer only exists while a trace consumer is attached.
    pub fn set_trace(&mut self, enabled: bool) {
        self.row_activates = if enabled { Some(Vec::new()) } else { None };
    }

    /// Drains the recorded `(cycle, channel, bank)` row activates.
    pub fn take_row_activates(&mut self) -> Vec<(u64, u32, u32)> {
        self.row_activates
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Channel index for an address: channels interleave at 256 B
    /// granularity (GPGPU-Sim-style memory partition interleaving) so
    /// spatial locality sees row hits.
    fn channel_of(&self, addr: u64) -> usize {
        ((addr / 256) % self.channels.len() as u64) as usize
    }

    /// Performs one access on `(ch_idx, bank_idx)` for a request that
    /// arrived at `arrival`, starting as soon as the bank and channel bus
    /// allow. Updates row state, counters, the activate trace and the
    /// efficiency bookkeeping; returns the completion cycle.
    fn do_access(&mut self, ch_idx: usize, bank_idx: usize, row: u64, arrival: u64) -> u64 {
        let cfg = self.config.clone();
        let ch = &mut self.channels[ch_idx];
        let bank = &mut ch.banks[bank_idx];

        let start = arrival.max(bank.ready_at).max(ch.bus_free_at);
        let (access_lat, activated) = match bank.open_row {
            Some(r) if r == row => {
                self.stats.inc("row_hit");
                (cfg.t_cas, false)
            }
            Some(_) => {
                self.stats.inc("row_miss");
                (cfg.t_rp + cfg.t_rcd + cfg.t_cas, true)
            }
            None => {
                self.stats.inc("row_empty");
                (cfg.t_rcd + cfg.t_cas, true)
            }
        };
        if activated {
            if let Some(buf) = self.row_activates.as_mut() {
                buf.push((start, ch_idx as u32, bank_idx as u32));
            }
        }
        bank.open_row = Some(row);
        let data_start = start + access_lat;
        let done = data_start + cfg.burst_cycles;
        bank.ready_at = done;
        ch.bus_free_at = done;

        // Efficiency bookkeeping: the active window is the union of
        // [arrival, done] intervals; transfer cycles are the burst slots.
        let window_start = arrival.max(ch.active_window_end);
        if done > window_start {
            ch.active_cycles += done - window_start;
            ch.active_window_end = done;
        }
        ch.transfer_cycles += cfg.burst_cycles;
        self.stats.inc("req");
        done
    }

    /// Services one 32 B chunk read arriving at `now` strictly in call
    /// order (the FCFS path); returns the absolute cycle its data is
    /// available.
    pub fn service(&mut self, addr: u64, now: u64) -> u64 {
        if self.config.perfect {
            self.stats.inc("req");
            return now + 1;
        }
        let ch_idx = self.channel_of(addr);
        let row = addr / self.config.row_bytes;
        let bank_idx = (row % self.config.banks_per_channel as u64) as usize;
        self.do_access(ch_idx, bank_idx, row, now)
    }

    /// Submits one 32 B chunk request arriving at `now` under the
    /// configured scheduler. FCFS (and perfect) configurations service it
    /// immediately and return [`DramIssue::Done`]; FR-FCFS queues it at its
    /// bank and returns a [`DramIssue::Queued`] ticket that
    /// [`Dram::run_schedule`] later redeems.
    ///
    /// FR-FCFS requires nondecreasing arrival cycles across submissions
    /// (the event-driven memory system guarantees this).
    pub fn submit(&mut self, addr: u64, now: u64) -> DramIssue {
        if self.config.perfect || self.config.sched == DramSched::Fcfs {
            return DramIssue::Done(self.service(addr, now));
        }
        let ch_idx = self.channel_of(addr);
        let row = addr / self.config.row_bytes;
        let bank_idx = (row % self.config.banks_per_channel as u64) as usize;
        self.next_ticket += 1;
        let ticket = self.next_ticket;
        debug_assert!(
            now >= self.last_arrival,
            "FR-FCFS arrivals must be nondecreasing"
        );
        self.last_arrival = self.last_arrival.max(now);
        self.channels[ch_idx].banks[bank_idx]
            .queue
            .push_back(Pending {
                ticket,
                row,
                arrival: now,
            });
        DramIssue::Queued(ticket)
    }

    /// Offers one 32 B chunk request arriving at `now`, honouring the
    /// bounded bank queues: an FR-FCFS submission whose target bank
    /// already holds `queue_depth` pending requests is refused (`None`)
    /// without consuming a ticket, back-pressuring the L2 slice. FCFS and
    /// perfect configurations never refuse.
    pub fn try_submit(&mut self, addr: u64, now: u64) -> Option<DramIssue> {
        let depth = match self.config.sched {
            DramSched::FrFcfs { queue_depth, .. } if !self.config.perfect => queue_depth as usize,
            _ => return Some(self.submit(addr, now)),
        };
        let ch_idx = self.channel_of(addr);
        let row = addr / self.config.row_bytes;
        let bank_idx = (row % self.config.banks_per_channel as u64) as usize;
        if self.channels[ch_idx].banks[bank_idx].queue.len() >= depth {
            return None;
        }
        Some(self.submit(addr, now))
    }

    /// `true` while FR-FCFS requests are still queued (drain check).
    pub fn has_queued(&self) -> bool {
        self.channels
            .iter()
            .any(|ch| ch.banks.iter().any(|b| !b.queue.is_empty()))
    }

    /// Finalizes every FR-FCFS scheduling decision whose service start is
    /// `<= horizon` and returns the `(ticket, completion cycle)` pairs, in
    /// decision order. Safe to call with any nondecreasing sequence of
    /// horizons: a decision at start `s` only depends on requests arriving
    /// at or before `s`, and callers never submit an arrival in the past.
    pub fn run_schedule(&mut self, horizon: u64) -> Vec<(u64, u64)> {
        let (depth, age_cap) = match self.config.sched {
            DramSched::FrFcfs {
                queue_depth,
                age_cap,
                // The constructor rejects depth 0, so the first-ready
                // window below is never empty while requests are queued.
            } => (queue_depth as usize, age_cap),
            DramSched::Fcfs => return Vec::new(),
        };
        let mut out = Vec::new();
        for ch_idx in 0..self.channels.len() {
            loop {
                // The oldest pending request of the channel (min ticket =
                // min arrival; per-bank queues are FIFO and arrivals are
                // globally nondecreasing).
                let ch = &self.channels[ch_idx];
                let bus = ch.bus_free_at;
                let oldest = ch
                    .banks
                    .iter()
                    .enumerate()
                    .filter_map(|(bi, b)| b.queue.front().map(|p| (p.ticket, bi)))
                    .min();
                let Some((_, oldest_bank)) = oldest else {
                    break;
                };
                let old = self.channels[ch_idx].banks[oldest_bank].queue[0];
                let s_old = old
                    .arrival
                    .max(self.channels[ch_idx].banks[oldest_bank].ready_at)
                    .max(bus);

                // Starvation bound: once the channel's oldest request has
                // waited out the age cap it is served next, unconditionally.
                // age_cap = 0 makes this fire on every decision = FCFS.
                let (bank_idx, pos) = if s_old.saturating_sub(old.arrival) >= age_cap {
                    (oldest_bank, 0)
                } else {
                    // First-ready: the earliest cycle any windowed request
                    // could start...
                    let ch = &self.channels[ch_idx];
                    let t_d = ch
                        .banks
                        .iter()
                        .flat_map(|b| {
                            let ready = b.ready_at;
                            b.queue
                                .iter()
                                .take(depth)
                                .map(move |p| p.arrival.max(ready).max(bus))
                        })
                        .min()
                        .expect("nonempty channel queue");
                    // ...then, among requests startable exactly then, a row
                    // hit beats a miss and age breaks ties.
                    let victim = ch
                        .banks
                        .iter()
                        .enumerate()
                        .flat_map(|(bi, b)| {
                            let ready = b.ready_at;
                            let open = b.open_row;
                            b.queue
                                .iter()
                                .take(depth)
                                .enumerate()
                                .filter(move |(_, p)| p.arrival.max(ready).max(bus) == t_d)
                                .map(move |(pos, p)| (open != Some(p.row), p.ticket, bi, pos))
                        })
                        .min()
                        .expect("t_d comes from a real candidate");
                    (victim.2, victim.3)
                };
                let p = self.channels[ch_idx].banks[bank_idx].queue[pos];
                let start = p
                    .arrival
                    .max(self.channels[ch_idx].banks[bank_idx].ready_at)
                    .max(bus);
                if start > horizon {
                    break;
                }
                self.channels[ch_idx].banks[bank_idx].queue.remove(pos);
                let done = self.do_access(ch_idx, bank_idx, p.row, p.arrival);
                out.push((p.ticket, done));
            }
        }
        out
    }

    /// Serializes the array's dynamic state — per-bank open rows, ready
    /// times and FR-FCFS queues, per-channel bus/efficiency bookkeeping,
    /// the ticket and arrival monotonicity counters, statistics and any
    /// pending row-activate trace events — for a machine-state snapshot.
    /// Geometry comes from the resuming configuration, not the file.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.seq(self.channels.len());
        for ch in &self.channels {
            e.seq(ch.banks.len());
            for b in &ch.banks {
                e.opt_u64(b.open_row);
                e.u64(b.ready_at);
                e.seq(b.queue.len());
                for p in &b.queue {
                    e.u64(p.ticket);
                    e.u64(p.row);
                    e.u64(p.arrival);
                }
            }
            e.u64(ch.bus_free_at);
            e.u64(ch.active_window_end);
            e.u64(ch.active_cycles);
            e.u64(ch.transfer_cycles);
        }
        self.stats.save(e);
        match &self.row_activates {
            None => e.u8(0),
            Some(buf) => {
                e.u8(1);
                e.seq(buf.len());
                for &(cycle, ch, bank) in buf {
                    e.u64(cycle);
                    e.u32(ch);
                    e.u32(bank);
                }
            }
        }
        e.u64(self.next_ticket);
        e.u64(self.last_arrival);
    }

    /// Restores dynamic state written by [`Dram::save`] into an array
    /// built from `config`.
    ///
    /// # Errors
    ///
    /// A channel or bank count that disagrees with the configured
    /// geometry is a mismatched snapshot.
    pub fn load(
        config: DramConfig,
        d: &mut vksim_snapshot::Dec<'_>,
    ) -> Result<Self, vksim_snapshot::SnapError> {
        let mut dram = Dram::new(config);
        let n = d.seq()?;
        if n != dram.channels.len() {
            return Err(vksim_snapshot::SnapError::Malformed(format!(
                "snapshot has {n} DRAM channels, {} configured",
                dram.channels.len()
            )));
        }
        for ch in dram.channels.iter_mut() {
            let nb = d.seq()?;
            if nb != ch.banks.len() {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "snapshot has {nb} banks per channel, {} configured",
                    ch.banks.len()
                )));
            }
            for b in ch.banks.iter_mut() {
                b.open_row = d.opt_u64()?;
                b.ready_at = d.u64()?;
                let nq = d.seq()?;
                b.queue = VecDeque::with_capacity(nq);
                for _ in 0..nq {
                    b.queue.push_back(Pending {
                        ticket: d.u64()?,
                        row: d.u64()?,
                        arrival: d.u64()?,
                    });
                }
            }
            ch.bus_free_at = d.u64()?;
            ch.active_window_end = d.u64()?;
            ch.active_cycles = d.u64()?;
            ch.transfer_cycles = d.u64()?;
        }
        dram.stats = Counters::load(d)?;
        dram.row_activates = match d.u8()? {
            0 => None,
            1 => {
                let n = d.seq()?;
                let mut buf = Vec::with_capacity(n);
                for _ in 0..n {
                    let cycle = d.u64()?;
                    let ch = d.u32()?;
                    buf.push((cycle, ch, d.u32()?));
                }
                Some(buf)
            }
            t => {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "row-activate trace tag {t}"
                )))
            }
        };
        dram.next_ticket = d.u64()?;
        dram.last_arrival = d.u64()?;
        Ok(dram)
    }

    /// Cycles spent transferring data, summed over channels.
    pub fn transfer_cycles(&self) -> u64 {
        self.channels.iter().map(|c| c.transfer_cycles).sum()
    }

    /// Cycles in which at least one request was in flight (per-channel
    /// union), summed over channels.
    pub fn active_cycles(&self) -> u64 {
        self.channels.iter().map(|c| c.active_cycles).sum()
    }

    /// DRAM efficiency: transfer cycles / active cycles (paper Fig. 16:
    /// "out of cycles where there were DRAM requests at the memory access
    /// scheduler").
    pub fn efficiency(&self) -> f64 {
        let a = self.active_cycles();
        if a == 0 {
            0.0
        } else {
            self.transfer_cycles() as f64 / a as f64
        }
    }

    /// DRAM utilization: transfer cycles / (total cycles × channels).
    pub fn utilization(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            self.transfer_cycles() as f64 / (total_cycles * self.channels.len() as u64) as f64
        }
    }

    /// Row-buffer hit rate.
    pub fn row_hit_rate(&self) -> f64 {
        let h = self.stats.get("row_hit") as f64;
        let total = self.stats.get("req") as f64;
        if total == 0.0 {
            0.0
        } else {
            h / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hit_is_cheaper_than_row_miss() {
        // Single channel, single bank: every access shares the row buffer.
        let mut d = Dram::new(DramConfig {
            channels: 1,
            banks_per_channel: 1,
            ..Default::default()
        });
        let t1 = d.service(0x0000, 0);
        let t2 = d.service(0x0020, t1); // same row
        let row_hit_cost = t2 - t1;
        let t3 = d.service(d.config().row_bytes * 5, t2); // different row
        let row_miss_cost = t3 - t2;
        assert!(
            row_miss_cost > row_hit_cost,
            "{row_miss_cost} <= {row_hit_cost}"
        );
        assert_eq!(d.stats.get("row_hit"), 1);
        assert_eq!(d.stats.get("row_miss"), 1);
        assert_eq!(d.stats.get("row_empty"), 1);
    }

    #[test]
    fn channels_serve_in_parallel() {
        let mut d = Dram::new(DramConfig::default());
        // Two chunks 256 B apart map to different channels, both at cycle 0.
        let t_a = d.service(0, 0);
        let t_b = d.service(256, 0);
        // Independent channels: neither waits for the other.
        assert_eq!(t_a, t_b);
    }

    #[test]
    fn same_channel_serializes_on_bus() {
        let mut d = Dram::new(DramConfig::default());
        let t_a = d.service(0, 0);
        let t_b = d.service(32, 0); // same 256 B block -> same channel
        assert!(t_b > t_a, "bus contention must serialize");
    }

    #[test]
    fn perfect_mode_is_single_cycle() {
        let mut d = Dram::new(DramConfig {
            perfect: true,
            ..Default::default()
        });
        assert_eq!(d.service(0x123456, 77), 78);
        assert_eq!(d.transfer_cycles(), 0);
    }

    #[test]
    fn efficiency_and_utilization_bounds() {
        let mut d = Dram::new(DramConfig::default());
        let mut t = 0;
        for i in 0..100u64 {
            t = d.service(i * 32, t);
        }
        let eff = d.efficiency();
        assert!(eff > 0.0 && eff <= 1.0, "efficiency {eff}");
        let util = d.utilization(t);
        assert!(util > 0.0 && util <= 1.0, "utilization {util}");
        // With back-to-back demand, efficiency >= utilization.
        assert!(eff >= util);
    }

    #[test]
    fn efficiency_exceeds_utilization_under_sparse_demand() {
        // Sparse demand: requests arrive far apart, so most cycles have no
        // pending work. Efficiency only counts pending windows, so it stays
        // much higher than utilization — exactly the Fig. 16 distinction.
        let mut sparse = Dram::new(DramConfig::default());
        for i in 0..50u64 {
            sparse.service(i * 32, i * 1000);
        }
        let total = 50_000;
        assert!(sparse.efficiency() > sparse.utilization(total) * 5.0);
    }

    #[test]
    fn row_activate_trace_matches_counters() {
        let mut d = Dram::new(DramConfig {
            channels: 1,
            banks_per_channel: 1,
            ..Default::default()
        });
        // Disabled by default: no events recorded.
        d.service(0x0000, 0);
        assert!(d.take_row_activates().is_empty());
        d.set_trace(true);
        let t1 = d.service(0x0020, 100); // row hit: no activate
        d.service(d.config().row_bytes * 3, t1); // row miss: activate
        let evs = d.take_row_activates();
        assert_eq!(evs.len(), 1);
        assert_eq!((evs[0].1, evs[0].2), (0, 0));
        assert!(d.take_row_activates().is_empty(), "take drains the buffer");
    }

    #[test]
    fn mobile_config_has_fewer_channels() {
        let m = DramConfig::mobile();
        assert!(m.channels < DramConfig::default().channels);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_channels_panics() {
        let _ = Dram::new(DramConfig {
            channels: 0,
            ..Default::default()
        });
    }

    #[test]
    #[should_panic(expected = "degenerate FR-FCFS queue depth")]
    fn zero_fr_fcfs_depth_panics() {
        // The historical behaviour silently clamped depth 0 to 1,
        // rewriting the model the caller asked for; it is now rejected.
        let _ = Dram::new(DramConfig {
            sched: DramSched::FrFcfs {
                queue_depth: 0,
                age_cap: 0,
            },
            ..Default::default()
        });
    }

    #[test]
    fn try_submit_refuses_full_bank_without_a_ticket() {
        let mut d = Dram::new(fr_fcfs(2, 1 << 40));
        let row = d.config().row_bytes;
        // Two same-bank requests fill the depth-2 queue...
        assert!(matches!(d.try_submit(0, 0), Some(DramIssue::Queued(1))));
        assert!(matches!(
            d.try_submit(2 * row, 0),
            Some(DramIssue::Queued(2))
        ));
        // ...the third is refused and must not burn a ticket. Row 1 maps
        // to bank 1 of 2 — a different, non-full queue — so it still gets
        // the next ticket in sequence.
        assert_eq!(d.try_submit(4 * row, 0), None);
        assert!(matches!(d.try_submit(row, 0), Some(DramIssue::Queued(3))));
        // Draining the bank reopens it.
        let served = d.run_schedule(u64::MAX);
        assert_eq!(served.len(), 3);
        assert!(matches!(
            d.try_submit(4 * row, served[2].1),
            Some(DramIssue::Queued(4))
        ));
    }

    #[test]
    fn try_submit_never_refuses_fcfs_or_perfect() {
        let mut fcfs = Dram::new(DramConfig::default());
        let mut perfect = Dram::new(DramConfig {
            perfect: true,
            sched: DramSched::fr_fcfs_paper(),
            ..Default::default()
        });
        for i in 0..64u64 {
            assert!(matches!(fcfs.try_submit(0, i), Some(DramIssue::Done(_))));
            assert!(matches!(perfect.try_submit(0, i), Some(DramIssue::Done(_))));
        }
    }

    fn fr_fcfs(depth: u32, cap: u64) -> DramConfig {
        DramConfig {
            channels: 1,
            banks_per_channel: 2,
            sched: DramSched::FrFcfs {
                queue_depth: depth,
                age_cap: cap,
            },
            ..Default::default()
        }
    }

    #[test]
    fn fr_fcfs_serves_row_hit_before_older_miss() {
        let mut d = Dram::new(fr_fcfs(16, 1 << 40));
        let row = d.config().row_bytes;
        // Open row 0 in bank 0.
        assert!(matches!(d.submit(0, 0), DramIssue::Queued(1)));
        let first = d.run_schedule(u64::MAX);
        assert_eq!(first.len(), 1);
        // Now queue an older row miss (row 2 -> bank 0) and a younger hit
        // to the open row 0; the hit must be scheduled first.
        let t = first[0].1;
        assert!(matches!(d.submit(2 * row, t), DramIssue::Queued(2)));
        assert!(matches!(d.submit(32, t), DramIssue::Queued(3)));
        let order: Vec<u64> = d.run_schedule(u64::MAX).iter().map(|&(tk, _)| tk).collect();
        assert_eq!(order, vec![3, 2], "row hit bypasses the older miss");
        assert!(!d.has_queued());
    }

    #[test]
    fn fr_fcfs_age_cap_zero_is_cycle_identical_to_fcfs() {
        // A row-locality-rich stream with bank conflicts mixed in.
        let addrs: Vec<u64> = (0..64u64)
            .map(|i| {
                if i % 3 == 0 {
                    i * 32
                } else {
                    (i % 7) * 4096 + i * 32
                }
            })
            .collect();
        let mut fcfs = Dram::new(DramConfig {
            channels: 2,
            ..Default::default()
        });
        let mut frf = Dram::new(DramConfig {
            channels: 2,
            sched: DramSched::FrFcfs {
                queue_depth: 16,
                age_cap: 0,
            },
            ..Default::default()
        });
        let mut expect = Vec::new();
        for (i, &a) in addrs.iter().enumerate() {
            let now = 3 * i as u64;
            expect.push(fcfs.service(a, now));
            assert!(matches!(frf.submit(a, now), DramIssue::Queued(_)));
        }
        let mut got: Vec<(u64, u64)> = frf.run_schedule(u64::MAX);
        got.sort_by_key(|&(ticket, _)| ticket);
        let got: Vec<u64> = got.iter().map(|&(_, done)| done).collect();
        assert_eq!(got, expect, "age cap 0 must reproduce the FCFS schedule");
        assert_eq!(fcfs.stats, frf.stats);
    }

    #[test]
    fn fr_fcfs_horizon_defers_future_decisions() {
        let mut d = Dram::new(fr_fcfs(16, 1 << 40));
        assert!(matches!(d.submit(0, 100), DramIssue::Queued(_)));
        assert!(d.run_schedule(99).is_empty(), "not arrived yet");
        assert!(d.has_queued());
        let done = d.run_schedule(100);
        assert_eq!(done.len(), 1);
        assert!(done[0].1 > 100);
    }

    #[test]
    fn fr_fcfs_starvation_bound_holds_under_hostile_hits() {
        // Bank 0 gets a steady stream of row hits; one row miss to the same
        // bank must still be served within the age cap.
        let cap = 500;
        let mut d = Dram::new(fr_fcfs(16, cap));
        let row_bytes = d.config().row_bytes;
        assert!(matches!(d.submit(0, 0), DramIssue::Queued(1)));
        // The victim: a row miss in bank 0, one older request ahead of it.
        let DramIssue::Queued(victim) = d.submit(2 * row_bytes, 1) else {
            panic!("expected queued ticket");
        };
        for i in 1..40u64 {
            // Row hits to the open row 0, arriving steadily.
            d.submit((i % 8) * 32, 2 * i + 1);
        }
        let done = d.run_schedule(u64::MAX);
        let victim_done = done.iter().find(|&&(t, _)| t == victim).unwrap().1;
        // k = 1 older same-channel request at arrival:
        // bound = age_cap + 2 * max_access * (k + 1).
        let bound = cap + 2 * d.config().max_access_cycles() * 2;
        assert!(
            victim_done <= 1 + bound,
            "miss served at {victim_done}, bound {bound}"
        );
    }
}
