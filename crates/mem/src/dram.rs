//! Banked DRAM timing model with open-row policy.
//!
//! Models what the Fig. 16 experiment measures: *DRAM efficiency* (cycles
//! transferring data out of cycles with pending requests) and *DRAM
//! utilization* (out of all cycles), plus row-buffer locality. Requests are
//! interleaved across channels (memory partitions) by address, and each
//! channel has multiple banks with an open-row policy: a request to the
//! open row pays only CAS latency; otherwise precharge + activate + CAS.

use vksim_stats::Counters;

/// DRAM geometry and timing (in memory-clock cycles).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of channels (memory partitions).
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Row size in bytes.
    pub row_bytes: u64,
    /// Column access latency (row already open).
    pub t_cas: u64,
    /// Row activate latency.
    pub t_rcd: u64,
    /// Precharge latency.
    pub t_rp: u64,
    /// Cycles the channel data bus is busy per 32 B chunk.
    pub burst_cycles: u64,
    /// Zero-latency mode (the Fig. 15 "Perfect Mem" limit study).
    pub perfect: bool,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            channels: 6,
            banks_per_channel: 16,
            row_bytes: 2048,
            t_cas: 20,
            t_rcd: 20,
            t_rp: 20,
            burst_cycles: 2,
            perfect: false,
        }
    }
}

impl DramConfig {
    /// A mobile-class memory system: fewer channels, same timings (the
    /// paper's mobile configuration has less DRAM bandwidth).
    pub fn mobile() -> Self {
        DramConfig {
            channels: 2,
            ..Default::default()
        }
    }
}

#[derive(Clone, Debug, Default)]
struct Bank {
    open_row: Option<u64>,
    ready_at: u64,
}

#[derive(Clone, Debug, Default)]
struct Channel {
    banks: Vec<Bank>,
    bus_free_at: u64,
    // Union-of-intervals tracking for the efficiency denominator.
    active_window_end: u64,
    active_cycles: u64,
    transfer_cycles: u64,
}

/// The DRAM device array.
///
/// # Example
///
/// ```
/// use vksim_mem::{Dram, DramConfig};
/// let mut d = Dram::new(DramConfig::default());
/// let done = d.service(0x1000, 0);
/// assert!(done > 0);
/// // Same row, immediately after: row hit is cheaper.
/// let done2 = d.service(0x1020, done);
/// assert!(done2 - done < done);
/// ```
#[derive(Clone, Debug)]
pub struct Dram {
    config: DramConfig,
    channels: Vec<Channel>,
    /// Row-hit/miss and traffic counters.
    pub stats: Counters,
    /// Row-activate trace buffer: `(cycle, channel, bank)` per activate
    /// command, recorded only while tracing is enabled.
    row_activates: Option<Vec<(u64, u32, u32)>>,
}

impl Dram {
    /// Creates an idle DRAM array.
    ///
    /// # Panics
    ///
    /// Panics on a zero-channel or zero-bank configuration.
    pub fn new(config: DramConfig) -> Self {
        assert!(
            config.channels > 0 && config.banks_per_channel > 0,
            "degenerate DRAM geometry"
        );
        let channels = (0..config.channels)
            .map(|_| Channel {
                banks: vec![Bank::default(); config.banks_per_channel as usize],
                ..Channel::default()
            })
            .collect();
        Dram {
            config,
            channels,
            stats: Counters::new(),
            row_activates: None,
        }
    }

    /// Enables (or disables) row-activate event recording. Off by default;
    /// the buffer only exists while a trace consumer is attached.
    pub fn set_trace(&mut self, enabled: bool) {
        self.row_activates = if enabled { Some(Vec::new()) } else { None };
    }

    /// Drains the recorded `(cycle, channel, bank)` row activates.
    pub fn take_row_activates(&mut self) -> Vec<(u64, u32, u32)> {
        self.row_activates
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Services one 32 B chunk read arriving at `now`; returns the absolute
    /// cycle its data is available.
    pub fn service(&mut self, addr: u64, now: u64) -> u64 {
        if self.config.perfect {
            self.stats.inc("req");
            return now + 1;
        }
        let nch = self.channels.len() as u64;
        // Channels interleave at 256 B granularity (GPGPU-Sim-style memory
        // partition interleaving) so spatial locality sees row hits.
        let ch_idx = ((addr / 256) % nch) as usize;
        let row = addr / self.config.row_bytes;
        let cfg = self.config.clone();
        let ch = &mut self.channels[ch_idx];
        let bank_idx = (row % cfg.banks_per_channel as u64) as usize;
        let bank = &mut ch.banks[bank_idx];

        let start = now.max(bank.ready_at).max(ch.bus_free_at);
        let (access_lat, activated) = match bank.open_row {
            Some(r) if r == row => {
                self.stats.inc("row_hit");
                (cfg.t_cas, false)
            }
            Some(_) => {
                self.stats.inc("row_miss");
                (cfg.t_rp + cfg.t_rcd + cfg.t_cas, true)
            }
            None => {
                self.stats.inc("row_empty");
                (cfg.t_rcd + cfg.t_cas, true)
            }
        };
        if activated {
            if let Some(buf) = self.row_activates.as_mut() {
                buf.push((start, ch_idx as u32, bank_idx as u32));
            }
        }
        bank.open_row = Some(row);
        let data_start = start + access_lat;
        let done = data_start + cfg.burst_cycles;
        bank.ready_at = done;
        ch.bus_free_at = done;

        // Efficiency bookkeeping: the active window is the union of
        // [arrival, done] intervals; transfer cycles are the burst slots.
        let window_start = now.max(ch.active_window_end);
        if done > window_start {
            ch.active_cycles += done - window_start;
            ch.active_window_end = done;
        }
        ch.transfer_cycles += cfg.burst_cycles;
        self.stats.inc("req");
        done
    }

    /// Cycles spent transferring data, summed over channels.
    pub fn transfer_cycles(&self) -> u64 {
        self.channels.iter().map(|c| c.transfer_cycles).sum()
    }

    /// Cycles in which at least one request was in flight (per-channel
    /// union), summed over channels.
    pub fn active_cycles(&self) -> u64 {
        self.channels.iter().map(|c| c.active_cycles).sum()
    }

    /// DRAM efficiency: transfer cycles / active cycles (paper Fig. 16:
    /// "out of cycles where there were DRAM requests at the memory access
    /// scheduler").
    pub fn efficiency(&self) -> f64 {
        let a = self.active_cycles();
        if a == 0 {
            0.0
        } else {
            self.transfer_cycles() as f64 / a as f64
        }
    }

    /// DRAM utilization: transfer cycles / (total cycles × channels).
    pub fn utilization(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            self.transfer_cycles() as f64 / (total_cycles * self.channels.len() as u64) as f64
        }
    }

    /// Row-buffer hit rate.
    pub fn row_hit_rate(&self) -> f64 {
        let h = self.stats.get("row_hit") as f64;
        let total = self.stats.get("req") as f64;
        if total == 0.0 {
            0.0
        } else {
            h / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hit_is_cheaper_than_row_miss() {
        // Single channel, single bank: every access shares the row buffer.
        let mut d = Dram::new(DramConfig {
            channels: 1,
            banks_per_channel: 1,
            ..Default::default()
        });
        let t1 = d.service(0x0000, 0);
        let t2 = d.service(0x0020, t1); // same row
        let row_hit_cost = t2 - t1;
        let t3 = d.service(d.config().row_bytes * 5, t2); // different row
        let row_miss_cost = t3 - t2;
        assert!(
            row_miss_cost > row_hit_cost,
            "{row_miss_cost} <= {row_hit_cost}"
        );
        assert_eq!(d.stats.get("row_hit"), 1);
        assert_eq!(d.stats.get("row_miss"), 1);
        assert_eq!(d.stats.get("row_empty"), 1);
    }

    #[test]
    fn channels_serve_in_parallel() {
        let mut d = Dram::new(DramConfig::default());
        // Two chunks 256 B apart map to different channels, both at cycle 0.
        let t_a = d.service(0, 0);
        let t_b = d.service(256, 0);
        // Independent channels: neither waits for the other.
        assert_eq!(t_a, t_b);
    }

    #[test]
    fn same_channel_serializes_on_bus() {
        let mut d = Dram::new(DramConfig::default());
        let t_a = d.service(0, 0);
        let t_b = d.service(32, 0); // same 256 B block -> same channel
        assert!(t_b > t_a, "bus contention must serialize");
    }

    #[test]
    fn perfect_mode_is_single_cycle() {
        let mut d = Dram::new(DramConfig {
            perfect: true,
            ..Default::default()
        });
        assert_eq!(d.service(0x123456, 77), 78);
        assert_eq!(d.transfer_cycles(), 0);
    }

    #[test]
    fn efficiency_and_utilization_bounds() {
        let mut d = Dram::new(DramConfig::default());
        let mut t = 0;
        for i in 0..100u64 {
            t = d.service(i * 32, t);
        }
        let eff = d.efficiency();
        assert!(eff > 0.0 && eff <= 1.0, "efficiency {eff}");
        let util = d.utilization(t);
        assert!(util > 0.0 && util <= 1.0, "utilization {util}");
        // With back-to-back demand, efficiency >= utilization.
        assert!(eff >= util);
    }

    #[test]
    fn efficiency_exceeds_utilization_under_sparse_demand() {
        // Sparse demand: requests arrive far apart, so most cycles have no
        // pending work. Efficiency only counts pending windows, so it stays
        // much higher than utilization — exactly the Fig. 16 distinction.
        let mut sparse = Dram::new(DramConfig::default());
        for i in 0..50u64 {
            sparse.service(i * 32, i * 1000);
        }
        let total = 50_000;
        assert!(sparse.efficiency() > sparse.utilization(total) * 5.0);
    }

    #[test]
    fn row_activate_trace_matches_counters() {
        let mut d = Dram::new(DramConfig {
            channels: 1,
            banks_per_channel: 1,
            ..Default::default()
        });
        // Disabled by default: no events recorded.
        d.service(0x0000, 0);
        assert!(d.take_row_activates().is_empty());
        d.set_trace(true);
        let t1 = d.service(0x0020, 100); // row hit: no activate
        d.service(d.config().row_bytes * 3, t1); // row miss: activate
        let evs = d.take_row_activates();
        assert_eq!(evs.len(), 1);
        assert_eq!((evs[0].1, evs[0].2), (0, 0));
        assert!(d.take_row_activates().is_empty(), "take drains the buffer");
    }

    #[test]
    fn mobile_config_has_fewer_channels() {
        let m = DramConfig::mobile();
        assert!(m.channels < DramConfig::default().channels);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_channels_panics() {
        let _ = Dram::new(DramConfig {
            channels: 0,
            ..Default::default()
        });
    }
}
