//! Set-associative LRU cache with MSHRs and miss classification.

use std::collections::HashMap;
use vksim_stats::Counters;

/// Who issued a memory access; drives the per-source breakdown of Fig. 14
/// ("Cache misses primarily result from shader loads with only a small
/// portion coming from RT unit accesses").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load issued by shader code on the SIMT core.
    ShaderLoad,
    /// A store issued by shader code.
    ShaderStore,
    /// A BVH/intersection-buffer access issued by the RT unit.
    RtUnit,
}

impl AccessKind {
    fn tag(self) -> &'static str {
        match self {
            AccessKind::ShaderLoad => "shader_load",
            AccessKind::ShaderStore => "shader_store",
            AccessKind::RtUnit => "rt_unit",
        }
    }

    /// Stable numeric code for snapshot encoding.
    pub fn code(self) -> u8 {
        match self {
            AccessKind::ShaderLoad => 0,
            AccessKind::ShaderStore => 1,
            AccessKind::RtUnit => 2,
        }
    }

    /// Inverse of [`AccessKind::code`].
    ///
    /// # Errors
    ///
    /// An unknown code is a malformed snapshot.
    pub fn from_code(code: u8) -> Result<Self, vksim_snapshot::SnapError> {
        Ok(match code {
            0 => AccessKind::ShaderLoad,
            1 => AccessKind::ShaderStore,
            2 => AccessKind::RtUnit,
            c => {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "access kind code {c}"
                )))
            }
        })
    }
}

/// Cache geometry and timing.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheConfig {
    /// Diagnostic name ("L1D", "L2", "RTC", ...).
    pub name: String,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (32 to match the chunking granularity).
    pub line_bytes: u32,
    /// Associativity; 0 means fully associative (paper's L1D).
    pub assoc: u32,
    /// Hit latency in cycles.
    pub hit_latency: u32,
    /// Number of MSHR entries (distinct outstanding miss lines).
    pub mshr_entries: usize,
    /// Maximum requests merged into one MSHR entry.
    pub mshr_merge: usize,
}

impl CacheConfig {
    /// This cache's share when capacity is sliced over `n` memory
    /// partitions: `1/n` of the bytes and MSHR entries (floored at one
    /// line / one entry), same associativity and latency. `n = 1` is the
    /// identity, so single-partition configurations are bit-compatible
    /// with the unsliced cache.
    pub fn sliced(&self, n: u32) -> Self {
        let n = n.max(1);
        CacheConfig {
            size_bytes: (self.size_bytes / n as u64).max(self.line_bytes as u64),
            mshr_entries: (self.mshr_entries / n as usize).max(1),
            ..self.clone()
        }
    }

    /// The paper's baseline L1 data cache: 64 KB fully associative LRU,
    /// 20-cycle latency (Table III).
    pub fn l1d_baseline() -> Self {
        CacheConfig {
            name: "L1D".into(),
            size_bytes: 64 * 1024,
            line_bytes: 32,
            assoc: 0,
            hit_latency: 20,
            mshr_entries: 64,
            mshr_merge: 8,
        }
    }

    /// The paper's baseline L2: 3 MB, 16-way LRU, 160-cycle latency.
    pub fn l2_baseline() -> Self {
        CacheConfig {
            name: "L2".into(),
            size_bytes: 3 * 1024 * 1024,
            line_bytes: 32,
            assoc: 16,
            hit_latency: 160,
            mshr_entries: 256,
            mshr_merge: 16,
        }
    }

    fn num_lines(&self) -> u64 {
        self.size_bytes / self.line_bytes as u64
    }

    fn num_sets(&self) -> u64 {
        if self.assoc == 0 {
            1
        } else {
            (self.num_lines() / self.assoc as u64).max(1)
        }
    }
}

/// Outcome of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Line present; data available after `hit_latency`.
    Hit,
    /// Line absent; an MSHR entry was allocated — the caller must forward
    /// the miss down the hierarchy.
    MissToMemory,
    /// Line absent but an earlier miss on the same line is outstanding; the
    /// request was merged and completes with the earlier fill.
    MissMerged,
    /// No MSHR space (or merge slots): the access must be retried later.
    ReservationFail,
}

// One set's LRU state: line tag -> last-use stamp.
#[derive(Default, Debug, Clone)]
struct LruSet {
    lines: HashMap<u64, u64>,
}

impl LruSet {
    // Snapshot encoding: (tag, stamp) pairs sorted by tag so identical
    // sets always serialize to identical bytes.
    fn save(&self, e: &mut vksim_snapshot::Enc) {
        let mut tags: Vec<u64> = self.lines.keys().copied().collect();
        tags.sort_unstable();
        e.seq(tags.len());
        for t in tags {
            e.u64(t);
            e.u64(self.lines[&t]);
        }
    }

    fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        let n = d.seq()?;
        let mut lines = HashMap::with_capacity(n);
        for _ in 0..n {
            let t = d.u64()?;
            lines.insert(t, d.u64()?);
        }
        Ok(LruSet { lines })
    }
    fn touch(&mut self, tag: u64, stamp: u64) -> bool {
        match self.lines.get_mut(&tag) {
            Some(s) => {
                *s = stamp;
                true
            }
            None => false,
        }
    }

    fn insert(&mut self, tag: u64, stamp: u64, capacity: usize) {
        if self.lines.len() >= capacity && !self.lines.contains_key(&tag) {
            // Evict the least recently used tag.
            if let Some((&victim, _)) = self.lines.iter().min_by_key(|(_, &s)| s) {
                self.lines.remove(&victim);
            }
        }
        self.lines.insert(tag, stamp);
    }
}

/// A cache with MSHR tracking and classified miss statistics.
///
/// # Example
///
/// ```
/// use vksim_mem::{Cache, CacheConfig, CacheOutcome, AccessKind};
/// let mut c = Cache::new(CacheConfig::l1d_baseline());
/// assert_eq!(c.access(0x80, AccessKind::ShaderLoad, 0), CacheOutcome::MissToMemory);
/// c.fill(0x80, 100);
/// assert_eq!(c.access(0x80, AccessKind::ShaderLoad, 101), CacheOutcome::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<LruSet>,
    // MSHR: line address -> number of merged requesters.
    mshr: HashMap<u64, usize>,
    // Shadow structures for miss classification.
    ever_seen: HashMap<u64, ()>,
    shadow_full: LruSet,
    stamp: u64,
    /// Classified statistics (hits/misses by [`AccessKind`]).
    pub stats: Counters,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configured geometry is degenerate (zero lines).
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.num_lines() > 0, "cache must hold at least one line");
        let sets = (0..config.num_sets()).map(|_| LruSet::default()).collect();
        Cache {
            sets,
            mshr: HashMap::new(),
            ever_seen: HashMap::new(),
            shadow_full: LruSet::default(),
            stamp: 0,
            config,
            stats: Counters::new(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Line-aligns an address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.config.line_bytes as u64 * self.config.line_bytes as u64
    }

    fn set_index(&self, line: u64) -> usize {
        ((line / self.config.line_bytes as u64) % self.config.num_sets()) as usize
    }

    fn ways(&self) -> usize {
        if self.config.assoc == 0 {
            self.config.num_lines() as usize
        } else {
            self.config.assoc as usize
        }
    }

    /// Performs a (read or write) access at `now`; write-through
    /// no-write-allocate semantics: stores that miss do not allocate.
    pub fn access(&mut self, addr: u64, kind: AccessKind, now: u64) -> CacheOutcome {
        let _ = now;
        self.stamp += 1;
        let line = self.line_of(addr);
        let set = self.set_index(line);
        let is_store = kind == AccessKind::ShaderStore;

        // Shadow bookkeeping for classification (reads only).
        let first_touch = !is_store && self.ever_seen.insert(line, ()).is_none();
        let shadow_hit = if is_store {
            false
        } else {
            let h = self.shadow_full.touch(line, self.stamp);
            if !h {
                let cap = self.config.num_lines() as usize;
                self.shadow_full.insert(line, self.stamp, cap);
            }
            h
        };

        if self.sets[set].touch(line, self.stamp) {
            self.stats.inc(&format!("{}.hit", kind.tag()));
            return CacheOutcome::Hit;
        }

        if is_store {
            // Write-through no-allocate: a store never waits on a fill.
            self.stats.inc("shader_store.write_through");
            return CacheOutcome::Hit;
        }

        // A fill for this line is already in flight: merge into the MSHR
        // (counted separately, not as a new classified miss).
        if let Some(cnt) = self.mshr.get_mut(&line) {
            if *cnt >= self.config.mshr_merge {
                self.stats.inc("mshr.merge_fail");
                return CacheOutcome::ReservationFail;
            }
            *cnt += 1;
            self.stats.inc("mshr.merged");
            self.stats.inc(&format!("{}.miss_pending", kind.tag()));
            return CacheOutcome::MissMerged;
        }

        // Classify the demand miss.
        let class = if first_touch {
            "compulsory"
        } else if shadow_hit {
            // Fully associative shadow of the same capacity would have hit:
            // conflict miss.
            "conflict"
        } else {
            "capacity"
        };

        if self.mshr.len() >= self.config.mshr_entries {
            self.stats.inc("mshr.full");
            return CacheOutcome::ReservationFail;
        }
        self.stats.inc(&format!("{}.miss_{class}", kind.tag()));
        self.mshr.insert(line, 1);
        CacheOutcome::MissToMemory
    }

    /// Installs a line returned from the next level and frees its MSHR
    /// entry; returns how many merged requesters were waiting.
    pub fn fill(&mut self, addr: u64, now: u64) -> usize {
        let _ = now;
        self.stamp += 1;
        let line = self.line_of(addr);
        let set = self.set_index(line);
        let ways = self.ways();
        self.sets[set].insert(line, self.stamp, ways);
        self.mshr.remove(&line).unwrap_or(0)
    }

    /// Number of occupied MSHR entries.
    pub fn mshr_in_use(&self) -> usize {
        self.mshr.len()
    }

    /// Serializes the cache's dynamic state — tag/LRU arrays, the MSHR
    /// file, the classification shadow structures, the LRU stamp and the
    /// statistics — for a machine-state snapshot. The geometry is *not*
    /// written: the resuming run rebuilds it from its own (fingerprinted)
    /// configuration.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.seq(self.sets.len());
        for s in &self.sets {
            s.save(e);
        }
        let mut lines: Vec<u64> = self.mshr.keys().copied().collect();
        lines.sort_unstable();
        e.seq(lines.len());
        for l in lines {
            e.u64(l);
            e.usize(self.mshr[&l]);
        }
        let mut seen: Vec<u64> = self.ever_seen.keys().copied().collect();
        seen.sort_unstable();
        e.seq(seen.len());
        for l in seen {
            e.u64(l);
        }
        self.shadow_full.save(e);
        e.u64(self.stamp);
        self.stats.save(e);
    }

    /// Restores dynamic state written by [`Cache::save`] into a cache
    /// built from `config`.
    ///
    /// # Errors
    ///
    /// A set count that disagrees with the configured geometry is a
    /// mismatched snapshot.
    pub fn load(
        config: CacheConfig,
        d: &mut vksim_snapshot::Dec<'_>,
    ) -> Result<Self, vksim_snapshot::SnapError> {
        let mut cache = Cache::new(config);
        let n = d.seq()?;
        if n != cache.sets.len() {
            return Err(vksim_snapshot::SnapError::Malformed(format!(
                "cache {} has {n} snapshot sets but {} configured",
                cache.config.name,
                cache.sets.len()
            )));
        }
        for s in cache.sets.iter_mut() {
            *s = LruSet::load(d)?;
        }
        let n = d.seq()?;
        cache.mshr = HashMap::with_capacity(n);
        for _ in 0..n {
            let l = d.u64()?;
            let cnt = d.usize()?;
            cache.mshr.insert(l, cnt);
        }
        let n = d.seq()?;
        cache.ever_seen = HashMap::with_capacity(n);
        for _ in 0..n {
            cache.ever_seen.insert(d.u64()?, ());
        }
        cache.shadow_full = LruSet::load(d)?;
        cache.stamp = d.u64()?;
        cache.stats = Counters::load(d)?;
        Ok(cache)
    }

    /// Hit latency in cycles.
    pub fn hit_latency(&self) -> u32 {
        self.config.hit_latency
    }

    /// Total hits across sources.
    pub fn total_hits(&self) -> u64 {
        self.stats.get("shader_load.hit")
            + self.stats.get("shader_store.hit")
            + self.stats.get("rt_unit.hit")
    }

    /// Total classified read misses across sources. Pending (MSHR-merged)
    /// misses share the `miss_` prefix but are not new classified misses,
    /// so they are filtered out of the allocation-free prefix walk.
    pub fn total_misses(&self) -> u64 {
        ["shader_load.miss_", "rt_unit.miss_"]
            .iter()
            .flat_map(|p| self.stats.iter_prefix(p))
            .filter(|(k, _)| !k.ends_with("pending"))
            .map(|(_, v)| v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache(lines: u64, assoc: u32) -> Cache {
        Cache::new(CacheConfig {
            name: "T".into(),
            size_bytes: lines * 32,
            line_bytes: 32,
            assoc,
            hit_latency: 1,
            mshr_entries: 4,
            mshr_merge: 2,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny_cache(4, 0);
        assert_eq!(
            c.access(0x40, AccessKind::ShaderLoad, 0),
            CacheOutcome::MissToMemory
        );
        assert_eq!(c.fill(0x40, 10), 1);
        assert_eq!(
            c.access(0x40, AccessKind::ShaderLoad, 11),
            CacheOutcome::Hit
        );
        assert_eq!(c.total_hits(), 1);
        assert_eq!(c.total_misses(), 1);
    }

    #[test]
    fn same_line_offsets_hit_together() {
        let mut c = tiny_cache(4, 0);
        c.access(0x40, AccessKind::ShaderLoad, 0);
        c.fill(0x40, 1);
        assert_eq!(c.access(0x5F, AccessKind::ShaderLoad, 2), CacheOutcome::Hit);
    }

    #[test]
    fn mshr_merging_and_capacity() {
        let mut c = tiny_cache(16, 0);
        assert_eq!(
            c.access(0x100, AccessKind::ShaderLoad, 0),
            CacheOutcome::MissToMemory
        );
        assert_eq!(
            c.access(0x100, AccessKind::ShaderLoad, 0),
            CacheOutcome::MissMerged
        );
        // merge limit = 2
        assert_eq!(
            c.access(0x100, AccessKind::ShaderLoad, 0),
            CacheOutcome::ReservationFail
        );
        // 4 entries total
        for i in 1..4 {
            assert_eq!(
                c.access(0x100 + i * 32, AccessKind::ShaderLoad, 0),
                CacheOutcome::MissToMemory
            );
        }
        assert_eq!(
            c.access(0x900, AccessKind::ShaderLoad, 0),
            CacheOutcome::ReservationFail
        );
        assert_eq!(c.mshr_in_use(), 4);
        assert_eq!(c.fill(0x100, 5), 2);
        assert_eq!(c.mshr_in_use(), 3);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny_cache(2, 0); // 2 lines, fully associative
        for a in [0x00u64, 0x20] {
            c.access(a, AccessKind::ShaderLoad, 0);
            c.fill(a, 0);
        }
        // Touch 0x00 so 0x20 becomes LRU.
        assert_eq!(c.access(0x00, AccessKind::ShaderLoad, 1), CacheOutcome::Hit);
        c.access(0x40, AccessKind::ShaderLoad, 2);
        c.fill(0x40, 3);
        assert_eq!(c.access(0x00, AccessKind::ShaderLoad, 4), CacheOutcome::Hit);
        // 0x20 was evicted; this is a non-compulsory miss.
        assert_ne!(c.access(0x20, AccessKind::ShaderLoad, 5), CacheOutcome::Hit);
        let cap = c.stats.get("shader_load.miss_capacity");
        let conf = c.stats.get("shader_load.miss_conflict");
        assert_eq!(
            cap + conf,
            1,
            "second 0x20 miss must be classified non-compulsory"
        );
    }

    #[test]
    fn conflict_miss_classification() {
        // Direct-mapped 4-line cache: two addresses mapping to the same set
        // conflict even though capacity is fine.
        let mut c = tiny_cache(4, 1);
        let a = 0x000u64;
        let b = 0x080; // 4 lines * 32B stride -> same set in direct-mapped
        for _ in 0..3 {
            for addr in [a, b] {
                if c.access(addr, AccessKind::ShaderLoad, 0) == CacheOutcome::MissToMemory {
                    c.fill(addr, 0);
                }
            }
        }
        assert!(
            c.stats.get("shader_load.miss_conflict") >= 2,
            "ping-pong on one set must classify as conflict: {:?}",
            c.stats
        );
        assert_eq!(c.stats.get("shader_load.miss_capacity"), 0);
    }

    #[test]
    fn compulsory_misses_counted_once_per_line() {
        let mut c = tiny_cache(8, 0);
        for i in 0..4u64 {
            c.access(i * 32, AccessKind::ShaderLoad, 0);
            c.fill(i * 32, 0);
        }
        assert_eq!(c.stats.get("shader_load.miss_compulsory"), 4);
        for i in 0..4u64 {
            assert_eq!(
                c.access(i * 32, AccessKind::ShaderLoad, 1),
                CacheOutcome::Hit
            );
        }
        assert_eq!(c.stats.get("shader_load.miss_compulsory"), 4);
    }

    #[test]
    fn stores_are_write_through_no_allocate() {
        let mut c = tiny_cache(4, 0);
        assert_eq!(
            c.access(0x200, AccessKind::ShaderStore, 0),
            CacheOutcome::Hit
        );
        // The store did not allocate: a later load misses.
        assert_eq!(
            c.access(0x200, AccessKind::ShaderLoad, 1),
            CacheOutcome::MissToMemory
        );
        assert_eq!(c.stats.get("shader_store.write_through"), 1);
    }

    #[test]
    fn rt_unit_accesses_tracked_separately() {
        let mut c = tiny_cache(8, 0);
        c.access(0x40, AccessKind::RtUnit, 0);
        c.fill(0x40, 1);
        c.access(0x40, AccessKind::RtUnit, 2);
        assert_eq!(c.stats.get("rt_unit.hit"), 1);
        assert_eq!(c.stats.get("rt_unit.miss_compulsory"), 1);
        assert_eq!(c.stats.get("shader_load.hit"), 0);
    }

    #[test]
    fn paper_configs_construct() {
        let l1 = Cache::new(CacheConfig::l1d_baseline());
        assert_eq!(l1.hit_latency(), 20);
        let l2 = Cache::new(CacheConfig::l2_baseline());
        assert_eq!(l2.hit_latency(), 160);
        assert_eq!(l2.config().num_sets(), 3 * 1024 * 1024 / 32 / 16);
    }

    #[test]
    fn fill_installs_the_whole_line() {
        // Fills are line-granular: after one fill, every byte offset within
        // the 32 B line hits, and the neighbouring lines stay absent.
        let mut c = tiny_cache(8, 0);
        assert_eq!(
            c.access(0x107, AccessKind::ShaderLoad, 0),
            CacheOutcome::MissToMemory
        );
        c.fill(0x107, 1);
        for offset in [0u64, 1, 13, 31] {
            assert_eq!(
                c.access(0x100 + offset, AccessKind::ShaderLoad, 2),
                CacheOutcome::Hit,
                "offset {offset} within the filled line must hit"
            );
        }
        assert_eq!(
            c.access(0x0E0, AccessKind::ShaderLoad, 3),
            CacheOutcome::MissToMemory
        );
        assert_eq!(
            c.access(0x120, AccessKind::ShaderLoad, 3),
            CacheOutcome::MissToMemory
        );
    }

    // -----------------------------------------------------------------
    // Property tests (vksim-testkit): randomized access streams against
    // the cache's accounting invariants.
    // -----------------------------------------------------------------

    mod properties {
        use super::*;
        use vksim_testkit::prop::{check, u32_in, u64_in, usize_in, vec_of};
        use vksim_testkit::{prop_assert, prop_assert_eq};

        fn build(lines: u64, assoc: u32, mshr_entries: usize, mshr_merge: usize) -> Cache {
            Cache::new(CacheConfig {
                name: "P".into(),
                size_bytes: lines * 32,
                line_bytes: 32,
                assoc,
                hit_latency: 1,
                mshr_entries,
                mshr_merge,
            })
        }

        /// Every access is accounted exactly once: the outcome tallies must
        /// reconcile with the classified statistics counters, and draining
        /// all outstanding fills must empty the MSHR file.
        #[test]
        fn outcome_tallies_reconcile_with_stats() {
            let stream = vec_of((u64_in(0, 2048), u32_in(0, 3)), 1, 300);
            let geometry = (u64_in(1, 32), u32_in(0, 5), usize_in(1, 8), usize_in(1, 4));
            check(
                &(geometry, stream),
                |((lines, assoc_raw, entries, merge), accs)| {
                    // assoc 0 = fully associative; otherwise clamp to line count.
                    let assoc = if *assoc_raw == 0 {
                        0
                    } else {
                        (*assoc_raw).min(*lines as u32)
                    };
                    let mut c = build(*lines, assoc, *entries, *merge);
                    let (mut hits, mut misses, mut merged, mut resfail) = (0u64, 0u64, 0u64, 0u64);
                    let mut stores = 0u64;
                    for (i, &(addr, kind_raw)) in accs.iter().enumerate() {
                        let kind = match kind_raw {
                            0 => AccessKind::ShaderLoad,
                            1 => AccessKind::ShaderStore,
                            _ => AccessKind::RtUnit,
                        };
                        if kind == AccessKind::ShaderStore {
                            stores += 1;
                        }
                        match c.access(addr, kind, i as u64) {
                            CacheOutcome::Hit => hits += 1,
                            CacheOutcome::MissToMemory => misses += 1,
                            CacheOutcome::MissMerged => merged += 1,
                            CacheOutcome::ReservationFail => {
                                resfail += 1;
                                // Model the SM's retry path: drain one fill so
                                // the stream can make progress.
                                let line = c.mshr.keys().min().copied();
                                if let Some(line) = line {
                                    c.fill(line, i as u64);
                                }
                            }
                        }
                    }
                    prop_assert_eq!(
                        hits + misses + merged + resfail,
                        accs.len() as u64,
                        "every access must have exactly one outcome"
                    );
                    // Store write-throughs report Hit without counting in the
                    // hit statistics; everything else must reconcile.
                    let wt = c.stats.get("shader_store.write_through");
                    prop_assert!(wt <= stores);
                    prop_assert_eq!(c.total_hits() + wt, hits);
                    prop_assert_eq!(c.total_misses(), misses);
                    prop_assert_eq!(c.stats.get("mshr.merged"), merged);
                    prop_assert_eq!(
                        c.stats.get("mshr.full") + c.stats.get("mshr.merge_fail"),
                        resfail
                    );
                    // Draining every outstanding fill empties the MSHR file.
                    let outstanding: Vec<u64> = c.mshr.keys().copied().collect();
                    prop_assert!(outstanding.len() <= *entries);
                    for line in outstanding {
                        prop_assert!(c.fill(line, u64::MAX) >= 1);
                    }
                    prop_assert_eq!(c.mshr_in_use(), 0);
                    Ok(())
                },
            );
        }

        /// Compulsory misses never exceed the number of distinct lines read,
        /// and re-reading a filled working set that fits in the cache hits
        /// on every line (LRU keeps a fitting working set resident).
        #[test]
        fn fitting_working_set_stays_resident() {
            let geometry = (u64_in(2, 32), usize_in(1, 32));
            check(
                &(geometry, u64_in(0, 1 << 20)),
                |&((lines, set_size), base)| {
                    let set_size = set_size.min(lines as usize);
                    let mut c = build(lines, 0, 64, 8);
                    let addrs: Vec<u64> = (0..set_size).map(|i| base + i as u64 * 32).collect();
                    for (i, &a) in addrs.iter().enumerate() {
                        match c.access(a, AccessKind::ShaderLoad, i as u64) {
                            CacheOutcome::MissToMemory => {
                                c.fill(a, i as u64);
                            }
                            CacheOutcome::Hit => {}
                            other => prop_assert!(false, "unexpected outcome {other:?}"),
                        }
                    }
                    let distinct = addrs
                        .iter()
                        .map(|a| a / 32)
                        .collect::<std::collections::HashSet<_>>();
                    prop_assert_eq!(
                        c.stats.get("shader_load.miss_compulsory"),
                        distinct.len() as u64
                    );
                    // Second pass: the whole set must be resident.
                    for (i, &a) in addrs.iter().enumerate() {
                        prop_assert_eq!(
                            c.access(a, AccessKind::ShaderLoad, (set_size + i) as u64),
                            CacheOutcome::Hit,
                            "warm line {a:#x} must still be resident"
                        );
                    }
                    Ok(())
                },
            );
        }

        /// Thrashing an over-capacity working set through a tiny cache
        /// evicts: the second pass classifies non-compulsory misses and
        /// never reports more hits than capacity allows.
        #[test]
        fn over_capacity_streams_evict_and_classify() {
            check(&(u64_in(1, 8), u64_in(2, 4)), |&(lines, over)| {
                let mut c = build(lines, 0, 64, 8);
                let n = (lines * over) as usize; // strictly larger than capacity
                let mut now = 0u64;
                for pass in 0..2u64 {
                    for i in 0..n {
                        now += 1;
                        let a = i as u64 * 32;
                        if c.access(a, AccessKind::ShaderLoad, now) == CacheOutcome::MissToMemory {
                            c.fill(a, now);
                        }
                        let _ = pass;
                    }
                }
                let compulsory = c.stats.get("shader_load.miss_compulsory");
                let capacity = c.stats.get("shader_load.miss_capacity");
                let conflict = c.stats.get("shader_load.miss_conflict");
                prop_assert_eq!(
                    compulsory,
                    n as u64,
                    "first touch of every line is compulsory"
                );
                prop_assert!(
                    capacity + conflict > 0,
                    "sequential over-capacity re-walk must evict and re-miss \
                     (lines {lines}, n {n}, capacity {capacity}, conflict {conflict})"
                );
                prop_assert_eq!(c.total_hits(), 0, "LRU sequential thrash cannot hit");
                Ok(())
            });
        }

        /// MSHR merge bookkeeping: k merged requesters on one line are all
        /// released by a single fill, and the merge cap bounds k.
        #[test]
        fn mshr_merge_released_by_one_fill() {
            check(
                &(usize_in(1, 8), usize_in(1, 12)),
                |&(merge_cap, requesters)| {
                    let mut c = build(16, 0, 4, merge_cap);
                    prop_assert_eq!(
                        c.access(0x40, AccessKind::ShaderLoad, 0),
                        CacheOutcome::MissToMemory
                    );
                    let mut merged = 0usize;
                    for i in 0..requesters {
                        match c.access(0x40, AccessKind::RtUnit, 1 + i as u64) {
                            CacheOutcome::MissMerged => merged += 1,
                            CacheOutcome::ReservationFail => {}
                            other => prop_assert!(false, "unexpected outcome {other:?}"),
                        }
                    }
                    prop_assert_eq!(merged, requesters.min(merge_cap - 1));
                    prop_assert_eq!(
                        c.fill(0x40, 100),
                        1 + merged,
                        "fill releases every requester"
                    );
                    prop_assert_eq!(c.mshr_in_use(), 0);
                    prop_assert_eq!(
                        c.access(0x40, AccessKind::ShaderLoad, 101),
                        CacheOutcome::Hit
                    );
                    Ok(())
                },
            );
        }
    }

    #[test]
    fn sliced_config_divides_capacity_and_mshrs() {
        let l2 = CacheConfig::l2_baseline();
        assert_eq!(l2.sliced(1), l2, "slice by 1 is the identity");
        let s = l2.sliced(8);
        assert_eq!(s.size_bytes, l2.size_bytes / 8);
        assert_eq!(s.mshr_entries, l2.mshr_entries / 8);
        assert_eq!(s.assoc, l2.assoc);
        assert_eq!(s.hit_latency, l2.hit_latency);
        // Degenerate slicing floors at one line / one MSHR.
        let tiny = CacheConfig {
            size_bytes: 64,
            mshr_entries: 2,
            ..l2
        }
        .sliced(16);
        assert_eq!(tiny.size_bytes, tiny.line_bytes as u64);
        assert_eq!(tiny.mshr_entries, 1);
    }
}
