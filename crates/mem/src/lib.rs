//! Timing model of the GPU memory hierarchy.
//!
//! Reproduces the memory system the paper's GPU model inherits from
//! GPGPU-Sim 4.0 and extends for ray tracing:
//!
//! * [`cache::Cache`] — set-associative (or fully associative) LRU caches
//!   with MSHRs and miss classification (compulsory / capacity / conflict),
//!   feeding the Fig. 14 cache-breakdown experiment. Accesses are tagged
//!   with an [`AccessKind`] so shader loads and RT-unit loads can be
//!   reported separately.
//! * [`dram::Dram`] — banked DRAM with open-row policy, per-channel
//!   bandwidth, the efficiency/utilization statistics of Fig. 16, and two
//!   access schedulers ([`dram::DramSched`]): in-order FCFS and FR-FCFS
//!   with a bounded reorder window plus an age-cap starvation bound.
//! * [`system::SharedMemSystem`] — the partitioned L2 + interconnect +
//!   DRAM backend shared by all SMs: `num_partitions` independent memory
//!   partitions (L2 slice + DRAM channel group each), interleaved at
//!   128 B ([`system::partition_of`]); per-SM L1s forward misses into it.
//!   Larger requests are split into 32 B chunks by the producers (paper
//!   §III-C3).
//!
//! The hierarchy is event-driven: producers submit requests with the
//! current cycle, call [`system::SharedMemSystem::advance_to`] each cycle,
//! and receive completed request IDs.

pub mod cache;
pub mod dram;
pub mod system;

pub use cache::{AccessKind, Cache, CacheConfig, CacheOutcome};
pub use dram::{Dram, DramConfig, DramIssue, DramSched};
pub use system::{
    partition_of, MemConfig, MemRequest, MemSink, RequestQueue, SharedMemSystem, SystemConfig,
    PARTITION_BYTES,
};

/// Memory chunk size: larger requests are broken into 32 B pieces
/// (paper §III-C3).
pub const CHUNK_BYTES: u32 = 32;

/// Splits a byte range into 32 B-aligned chunk addresses.
///
/// # Example
///
/// ```
/// use vksim_mem::chunk_addresses;
/// assert_eq!(chunk_addresses(0x40, 64), vec![0x40, 0x60]);
/// assert_eq!(chunk_addresses(0x41, 32), vec![0x40, 0x60]); // straddles
/// ```
pub fn chunk_addresses(addr: u64, size: u32) -> Vec<u64> {
    let step = CHUNK_BYTES as u64;
    let first = addr / step * step;
    let last = (addr + size.max(1) as u64 - 1) / step * step;
    (0..)
        .map(|i| first + i * step)
        .take_while(|&a| a <= last)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_aligned_and_unaligned() {
        assert_eq!(chunk_addresses(0, 32), vec![0]);
        assert_eq!(chunk_addresses(0, 33), vec![0, 32]);
        assert_eq!(chunk_addresses(31, 2), vec![0, 32]);
        assert_eq!(chunk_addresses(128, 128), vec![128, 160, 192, 224]);
        assert_eq!(chunk_addresses(100, 1), vec![96]);
    }
}
