//! AccelWattch-style GPU power and energy model.
//!
//! Vulkan-Sim integrates AccelWattch to estimate power (paper §VI-D). The
//! paper's findings this model reproduces: RT units average **less than 1%**
//! of total GPU power; DRAM accounts for around **10%**; the majority is
//! constant and static power, so reducing execution time reduces energy.
//!
//! The model is an activity-based component estimator: each event class
//! (ALU op, SFU op, cache access, DRAM access, RT-unit operation) has a
//! per-event energy; static and constant power accrue per cycle.
//!
//! # Example
//!
//! ```
//! use vksim_power::{PowerModel, ActivityCounts};
//! let model = PowerModel::default();
//! let report = model.estimate(&ActivityCounts {
//!     cycles: 1_000_000,
//!     alu_ops: 5_000_000,
//!     sfu_ops: 100_000,
//!     cache_accesses: 800_000,
//!     dram_accesses: 200_000,
//!     rt_ops: 300_000,
//!     ..ActivityCounts::default()
//! });
//! assert!(report.fraction("rt_unit") < 0.01);
//! assert!(report.total_energy_j > 0.0);
//! ```

/// Activity counts extracted from a simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ActivityCounts {
    /// Total core cycles.
    pub cycles: u64,
    /// ALU lane-operations executed.
    pub alu_ops: u64,
    /// SFU lane-operations executed.
    pub sfu_ops: u64,
    /// L1/L2 cache accesses.
    pub cache_accesses: u64,
    /// DRAM chunk transfers.
    pub dram_accesses: u64,
    /// RT-unit operations (box/triangle/transform).
    pub rt_ops: u64,
    /// Register-file accesses (approximated from instructions if zero).
    pub regfile_accesses: u64,
}

/// Per-event energies (picojoules) and static/constant power (watts).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerModel {
    /// Energy per ALU lane-op (pJ).
    pub alu_pj: f64,
    /// Energy per SFU lane-op (pJ).
    pub sfu_pj: f64,
    /// Energy per cache access (pJ).
    pub cache_pj: f64,
    /// Energy per 32 B DRAM transfer (pJ); DRAM costs nanojoules per
    /// access (~20 pJ/bit including I/O), far above on-chip events.
    pub dram_pj: f64,
    /// Energy per RT-unit operation (pJ) — dedicated fixed-function units
    /// are cheap per op, which is why the RT unit's share stays tiny.
    pub rt_pj: f64,
    /// Energy per register-file access (pJ).
    pub regfile_pj: f64,
    /// Constant power: clocks, leakage-adjacent always-on logic (W).
    pub constant_w: f64,
    /// Static (leakage) power (W).
    pub static_w: f64,
    /// Core clock (Hz) used to convert cycles to seconds.
    pub clock_hz: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        // Calibrated so that a memory-heavy RT workload lands near the
        // paper's breakdown: DRAM ~10%, RT unit <1%, constant+static
        // majority.
        PowerModel {
            alu_pj: 2.0,
            sfu_pj: 8.0,
            cache_pj: 12.0,
            dram_pj: 20_000.0,
            rt_pj: 4.0,
            regfile_pj: 1.5,
            constant_w: 55.0,
            static_w: 35.0,
            clock_hz: 1.365e9,
        }
    }
}

/// Component-wise power/energy estimate.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerReport {
    /// `(component, energy in joules)` pairs.
    pub components: Vec<(&'static str, f64)>,
    /// Total energy (J).
    pub total_energy_j: f64,
    /// Average power (W).
    pub avg_power_w: f64,
    /// Runtime (s).
    pub runtime_s: f64,
}

impl PowerReport {
    /// Energy of one component in joules (0 if unknown).
    pub fn energy(&self, component: &str) -> f64 {
        self.components
            .iter()
            .find(|(n, _)| *n == component)
            .map(|(_, e)| *e)
            .unwrap_or(0.0)
    }

    /// Fraction of total energy attributed to a component.
    pub fn fraction(&self, component: &str) -> f64 {
        if self.total_energy_j == 0.0 {
            0.0
        } else {
            self.energy(component) / self.total_energy_j
        }
    }
}

impl PowerModel {
    /// Estimates energy for a run.
    pub fn estimate(&self, a: &ActivityCounts) -> PowerReport {
        let pj = 1e-12;
        let runtime_s = a.cycles as f64 / self.clock_hz;
        let regfile = if a.regfile_accesses == 0 {
            // Roughly three RF accesses per lane-op.
            (a.alu_ops + a.sfu_ops) * 3
        } else {
            a.regfile_accesses
        };
        let components = vec![
            ("alu", a.alu_ops as f64 * self.alu_pj * pj),
            ("sfu", a.sfu_ops as f64 * self.sfu_pj * pj),
            ("regfile", regfile as f64 * self.regfile_pj * pj),
            ("cache", a.cache_accesses as f64 * self.cache_pj * pj),
            ("dram", a.dram_accesses as f64 * self.dram_pj * pj),
            ("rt_unit", a.rt_ops as f64 * self.rt_pj * pj),
            ("constant", self.constant_w * runtime_s),
            ("static", self.static_w * runtime_s),
        ];
        let total_energy_j: f64 = components.iter().map(|(_, e)| e).sum();
        PowerReport {
            components,
            total_energy_j,
            avg_power_w: if runtime_s > 0.0 {
                total_energy_j / runtime_s
            } else {
                0.0
            },
            runtime_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typical_rt_workload() -> ActivityCounts {
        // Shaped like the paper's EXT: memory-heavy, ~1% trace instructions.
        ActivityCounts {
            cycles: 10_000_000,
            alu_ops: 60_000_000,
            sfu_ops: 2_000_000,
            cache_accesses: 25_000_000,
            dram_accesses: 4_000_000,
            rt_ops: 8_000_000,
            regfile_accesses: 0,
        }
    }

    #[test]
    fn rt_unit_share_is_below_one_percent() {
        let r = PowerModel::default().estimate(&typical_rt_workload());
        assert!(
            r.fraction("rt_unit") < 0.01,
            "rt share {}",
            r.fraction("rt_unit")
        );
    }

    #[test]
    fn dram_share_is_around_ten_percent() {
        let r = PowerModel::default().estimate(&typical_rt_workload());
        let f = r.fraction("dram");
        assert!(f > 0.03 && f < 0.25, "dram share {f}");
    }

    #[test]
    fn constant_and_static_dominate() {
        let r = PowerModel::default().estimate(&typical_rt_workload());
        let cs = r.fraction("constant") + r.fraction("static");
        assert!(cs > 0.5, "constant+static {cs}");
    }

    #[test]
    fn shorter_runs_use_less_energy() {
        let model = PowerModel::default();
        let base = typical_rt_workload();
        let fast = ActivityCounts {
            cycles: base.cycles / 2,
            ..base
        };
        let e_base = model.estimate(&base).total_energy_j;
        let e_fast = model.estimate(&fast).total_energy_j;
        assert!(e_fast < e_base, "shorter execution must save energy");
    }

    #[test]
    fn zero_activity_is_zero_energy() {
        let r = PowerModel::default().estimate(&ActivityCounts::default());
        assert_eq!(r.total_energy_j, 0.0);
        assert_eq!(r.avg_power_w, 0.0);
    }

    #[test]
    fn explicit_regfile_counts_respected() {
        let model = PowerModel::default();
        let a = ActivityCounts {
            cycles: 100,
            alu_ops: 100,
            regfile_accesses: 1,
            ..Default::default()
        };
        let b = ActivityCounts {
            cycles: 100,
            alu_ops: 100,
            regfile_accesses: 0,
            ..Default::default()
        };
        assert!(model.estimate(&a).energy("regfile") < model.estimate(&b).energy("regfile"));
    }
}
