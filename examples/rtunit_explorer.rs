//! Architecture exploration: sweep the RT unit's concurrent-warp limit and
//! the memory configuration — the kind of study the paper built Vulkan-Sim
//! for (Figs. 15 and 16, and the §VI-G observation that real hardware may
//! support only one warp per RT core).
//!
//! ```text
//! cargo run --release --example rtunit_explorer
//! ```

use vksim_core::{MemoryMode, SimConfig, Simulator};
use vksim_scenes::{build, Scale, WorkloadKind};

fn main() {
    let w = build(WorkloadKind::Ext, Scale::Test);
    println!(
        "EXT: {} primitives, BVH depth {}\n",
        w.primitive_count, w.bvh_depth
    );

    println!("== RT-unit concurrent-warp sweep (Fig. 16) ==");
    println!(
        "{:>6} {:>10} {:>9} {:>10} {:>10}",
        "warps", "cycles", "speedup", "dram eff", "dram util"
    );
    let mut base_cycles = None;
    for warps in [1usize, 2, 4, 8, 12, 16, 20] {
        let r = Simulator::new(SimConfig::test_small().with_rt_max_warps(warps))
            .run(&w.device, &w.cmd)
            .expect("healthy run");
        let base = *base_cycles.get_or_insert(r.gpu.cycles as f64);
        println!(
            "{:>6} {:>10} {:>8.2}x {:>9.1}% {:>9.1}%",
            warps,
            r.gpu.cycles,
            base / r.gpu.cycles as f64,
            r.gpu.dram_efficiency * 100.0,
            r.gpu.dram_utilization * 100.0
        );
    }

    println!("\n== Memory configurations (Fig. 15) ==");
    let modes = [
        ("baseline", MemoryMode::Baseline),
        ("rt-cache", MemoryMode::RtCache),
        ("perfect-bvh", MemoryMode::PerfectBvh),
        ("perfect-mem", MemoryMode::PerfectMem),
    ];
    let base = Simulator::new(SimConfig::test_small())
        .run(&w.device, &w.cmd)
        .expect("healthy run")
        .gpu
        .cycles as f64;
    for (name, mode) in modes {
        let r = Simulator::new(SimConfig::test_small().with_memory_mode(mode))
            .run(&w.device, &w.cmd)
            .expect("healthy run");
        println!(
            "  {name:<12} {:>9} cycles ({:.2}x baseline)",
            r.gpu.cycles,
            r.gpu.cycles as f64 / base
        );
    }

    println!("\n== Divergence handling (Fig. 17 right) ==");
    for (name, its) in [("simt-stack", false), ("its-multipath", true)] {
        let r = Simulator::new(SimConfig::test_small().with_its(its))
            .run(&w.device, &w.cmd)
            .expect("healthy run");
        println!(
            "  {name:<14} {:>9} cycles, RT occupancy {:.2} warps",
            r.gpu.cycles,
            r.gpu.rt_resident_warp_cycles as f64 / r.gpu.rt_busy_cycles.max(1) as f64
        );
    }
}
