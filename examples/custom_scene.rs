//! Building a custom ray-tracing workload from scratch against the public
//! API: geometry -> BLAS/TLAS -> shaders in the DSL -> pipeline -> launch.
//!
//! The scene: a checkerboard of tilted quads under a fixed sun, shaded by a
//! closest-hit shader with a shadow ray — the minimal "real" pipeline with
//! two miss shaders and secondary rays.
//!
//! ```text
//! cargo run --release --example custom_scene
//! ```

use vksim_bvh::geometry::{BlasGeometry, Triangle};
use vksim_bvh::Instance;
use vksim_core::validate::{read_framebuffer, to_ppm};
use vksim_core::{SimConfig, Simulator};
use vksim_math::{Mat4x3, Vec3};
use vksim_shader::builder::ShaderBuilder;
use vksim_shader::ir::{Builtin, ShaderKind};
use vksim_shader::PipelineShaders;
use vksim_vulkan::Device;

const W: u32 = 64;
const H: u32 = 48;

fn main() {
    let mut device = Device::new();

    // Geometry: one quad BLAS, instanced 8x8 with alternating materials.
    let quad = device.create_blas(BlasGeometry::triangles(vec![
        Triangle::new(
            Vec3::new(-0.45, 0.0, -0.45),
            Vec3::new(0.45, 0.0, -0.45),
            Vec3::new(0.45, 0.0, 0.45),
        ),
        Triangle::new(
            Vec3::new(-0.45, 0.0, -0.45),
            Vec3::new(0.45, 0.0, 0.45),
            Vec3::new(-0.45, 0.0, 0.45),
        ),
    ]));
    let mut instances = Vec::new();
    for gz in 0..8 {
        for gx in 0..8 {
            let t = Mat4x3::translation(Vec3::new(gx as f32 - 3.5, 0.0, gz as f32 - 3.5));
            instances.push(Instance::new(quad, t).with_custom_index((gx + gz) % 2));
        }
    }
    device.create_tlas(instances);

    // Framebuffer at binding 0.
    let fb = device.alloc_buffer(W as u64 * H as u64 * 4);
    device.bind_descriptor(0, fb);

    // Raygen: simple downward-looking orthographic-ish camera.
    let mut rg = ShaderBuilder::new(ShaderKind::RayGen);
    let x = rg.var_f32(rg.launch_id(0).to_f32());
    let y = rg.var_f32(rg.launch_id(1).to_f32());
    let w = rg.var_f32(rg.launch_size(0).to_f32());
    let h = rg.var_f32(rg.launch_size(1).to_f32());
    let ox = rg.var_f32((rg.v(x) / rg.v(w) - rg.c_f32(0.5)) * rg.c_f32(9.0));
    let oz = rg.var_f32((rg.v(y) / rg.v(h) - rg.c_f32(0.5)) * rg.c_f32(9.0));
    rg.trace_ray(
        [rg.v(ox), rg.c_f32(5.0), rg.v(oz)],
        [rg.c_f32(0.15), rg.c_f32(-1.0), rg.c_f32(0.1)],
        rg.c_f32(1e-3),
        rg.c_f32(1e30),
        rg.c_u32(0),
        0,
    );
    // Pack grayscale from payload 0.
    let shade = rg.var_f32(rg.payload(0));
    let q = rg.var_u32((rg.v(shade).min(rg.c_f32(1.0)) * rg.c_f32(255.0)).to_u32());
    let px = rg.var_u32(
        rg.v(q)
            .bitor(rg.v(q).shl(rg.c_u32(8)))
            .bitor(rg.v(q).shl(rg.c_u32(16)))
            .bitor(rg.c_u32(0xFF00_0000)),
    );
    let pid = rg.var_u32(rg.launch_id(1) * rg.launch_size(0) + rg.launch_id(0));
    let addr = rg.var_u32(rg.buffer_base(0) + rg.v(pid) * rg.c_u32(4));
    rg.store(rg.v(addr), 0, rg.v(px));

    // Closest hit: checkerboard albedo x (shadowed ? 0.2 : 1.0).
    let mut ch = ShaderBuilder::new(ShaderKind::ClosestHit);
    let mat = ch.var_u32(ch.builtin(Builtin::HitInstanceCustomIndex));
    let albedo = ch.var_f32(
        ch.v(mat)
            .eq_(ch.c_u32(0))
            .select(ch.c_f32(0.9), ch.c_f32(0.35)),
    );
    let t = ch.var_f32(ch.builtin(Builtin::HitT));
    let p = [0u8, 1, 2].map(|d| {
        ch.var_f32(
            ch.builtin(Builtin::RayOrigin(d)) + ch.builtin(Builtin::RayDirection(d)) * ch.v(t),
        )
    });
    ch.set_payload(7, ch.c_f32(0.0));
    let depth_ok = ch.builtin(Builtin::RecursionDepth).lt(ch.c_u32(2));
    ch.if_(depth_ok.clone(), |ch| {
        ch.trace_ray(
            [
                ch.v(p[0]) + ch.c_f32(0.0),
                ch.v(p[1]) + ch.c_f32(1e-3),
                ch.v(p[2]) + ch.c_f32(0.0),
            ],
            [ch.c_f32(0.3), ch.c_f32(1.0), ch.c_f32(0.2)],
            ch.c_f32(1e-3),
            ch.c_f32(1e30),
            ch.c_u32(1), // terminate on first hit
            1,           // occlusion miss
        );
    });
    let lit = ch.var_f32(depth_ok.select(ch.payload(7), ch.c_f32(1.0)));
    ch.set_payload_in(
        0,
        ch.v(albedo) * (ch.c_f32(0.25) + ch.c_f32(0.75) * ch.v(lit)),
    );

    // Miss 0: dark background. Miss 1: shadow feeler escaped.
    let mut ms = ShaderBuilder::new(ShaderKind::Miss);
    ms.set_payload_in(0, ms.c_f32(0.05));
    let mut occ = ShaderBuilder::new(ShaderKind::Miss);
    occ.set_payload_in(7, occ.c_f32(1.0));

    let pipeline = device
        .create_ray_tracing_pipeline(
            PipelineShaders {
                raygen: rg.finish(),
                miss: vec![ms.finish(), occ.finish()],
                closest_hit: vec![ch.finish()],
                intersection: vec![],
                any_hit: vec![],
                max_recursion_depth: 2,
            },
            false,
        )
        .expect("pipeline");
    let cmd = device.cmd_trace_rays(&pipeline, W, H);

    let mut sim = Simulator::new(SimConfig::test_small());
    let report = sim.run(&device, &cmd).expect("healthy run");
    println!(
        "custom scene: {} cycles, {} rays ({} shadow feelers), SIMT eff {:.1}%",
        report.gpu.cycles,
        report.runtime.rays,
        report.runtime.rays as i64 - (W * H) as i64,
        report.gpu.simt_efficiency * 100.0
    );
    let img = read_framebuffer(&report.memory, fb, (W * H) as usize);
    let path = std::env::temp_dir().join("vksim_custom_scene.ppm");
    std::fs::write(&path, to_ppm(&img, W, H)).expect("write image");
    println!("image written to {}", path.display());
}
