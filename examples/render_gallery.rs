//! Renders all five evaluation workloads with the functional simulator and
//! writes PPM images (the Table IV gallery), printing each scene's
//! characterization row.
//!
//! ```text
//! cargo run --release --example render_gallery [--small]
//! ```

use vksim_core::validate::{read_framebuffer, to_ppm};
use vksim_core::{SimConfig, Simulator};
use vksim_scenes::{build, Scale, WorkloadKind};

fn main() {
    let scale = if std::env::args().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Test
    };
    println!(
        "{:<6} {:>10} {:>10} {:>14} {:>9}",
        "scene", "prims", "BVH depth", "avg nodes/ray", "rays"
    );
    for kind in WorkloadKind::ALL {
        let w = build(kind, scale);
        let mut sim = Simulator::new(SimConfig::test_small());
        let (mem, stats) = sim.run_functional(&w.device, &w.cmd).expect("healthy run");
        println!(
            "{:<6} {:>10} {:>10} {:>14.1} {:>9}",
            w.name,
            w.primitive_count,
            w.bvh_depth,
            stats.avg_nodes_per_ray(),
            stats.rays
        );
        let img = read_framebuffer(&mem, w.fb_addr, (w.width * w.height) as usize);
        let path = std::env::temp_dir().join(format!("vksim_{}.ppm", w.name.to_lowercase()));
        std::fs::write(&path, to_ppm(&img, w.width, w.height)).expect("write image");
        println!("       -> {}", path.display());
    }
}
