//! Quickstart: simulate the TRI workload (a single ray-traced triangle, the
//! "hello world" of Vulkan ray tracing) on the cycle-level GPU model and
//! dump the rendered image plus headline statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vksim_core::report::instruction_mix;
use vksim_core::validate::{read_framebuffer, to_ppm};
use vksim_core::{SimConfig, Simulator};
use vksim_scenes::{build, Scale, WorkloadKind};

fn main() {
    // 1. Build the workload: scene geometry + acceleration structure +
    //    shaders, all behind the Vulkan-like device API.
    let workload = build(WorkloadKind::Tri, Scale::Test);
    println!(
        "workload {} — {} primitives, BVH depth {}, {}x{} rays",
        workload.name,
        workload.primitive_count,
        workload.bvh_depth,
        workload.width,
        workload.height
    );

    // 2. Run it on the timing model (2 SMs keeps the quickstart snappy).
    let mut sim = Simulator::new(SimConfig::test_small());
    let report = sim
        .run(&workload.device, &workload.cmd)
        .expect("healthy run");

    // 3. Inspect the paper's headline quantities.
    println!("cycles              : {}", report.gpu.cycles);
    println!("rays traced         : {}", report.runtime.rays);
    println!(
        "avg nodes per ray   : {:.1}",
        report.runtime.avg_nodes_per_ray()
    );
    println!(
        "SIMT efficiency     : {:.1}%",
        report.gpu.simt_efficiency * 100.0
    );
    println!(
        "RT-unit SIMT eff.   : {:.1}%",
        report.gpu.rt_simt_efficiency * 100.0
    );
    println!(
        "DRAM efficiency     : {:.1}%",
        report.gpu.dram_efficiency * 100.0
    );
    let mix = instruction_mix(&report.gpu);
    println!(
        "instruction mix     : ALU {:.0}%  MEM {:.0}%  trace-ray {:.2}%",
        mix.alu * 100.0,
        mix.mem * 100.0,
        mix.trace_ray * 100.0
    );
    println!("avg power           : {:.1} W", report.power.avg_power_w);

    // 4. Save the rendered frame.
    let pixels = read_framebuffer(
        &report.memory,
        workload.fb_addr,
        (workload.width * workload.height) as usize,
    );
    let ppm = to_ppm(&pixels, workload.width, workload.height);
    let path = std::env::temp_dir().join("vksim_quickstart.ppm");
    std::fs::write(&path, ppm).expect("write image");
    println!("image written to    : {}", path.display());
}
