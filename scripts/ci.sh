#!/usr/bin/env bash
# Offline CI gate for vulkan-sim-rs.
#
# Everything runs with --offline: the workspace has zero external
# dependencies (vksim-testkit supplies PRNG / property testing /
# micro-bench / golden comparison), so a network-less container must
# pass this script end to end.
#
# Usage: scripts/ci.sh            (from anywhere; cd's to the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --check

step "cargo build --release --offline --workspace"
cargo build --release --offline --workspace

step "cargo test --offline --workspace -q"
cargo test --offline --workspace -q

step "golden-counter regression suite"
cargo test --offline -q -p vksim-bench --test golden_counters

step "bench smoke run (VKSIM_BENCH_QUICK=1)"
VKSIM_BENCH_DIR="$(mktemp -d)" VKSIM_BENCH_QUICK=1 \
    cargo bench --offline --workspace

step "examples build"
cargo build --release --offline --examples

step "examples run (quickstart, custom_scene)"
cargo run --release --offline --example quickstart >/dev/null
cargo run --release --offline --example custom_scene >/dev/null

printf '\nCI gate passed.\n'
