#!/usr/bin/env bash
# Offline CI gate for vulkan-sim-rs.
#
# Everything runs with --offline: the workspace has zero external
# dependencies (vksim-testkit supplies PRNG / property testing /
# micro-bench / golden comparison), so a network-less container must
# pass this script end to end.
#
# Independent stages run as background jobs and join at barriers; stages
# that share the cargo target-dir lock still serialize their compile
# phases, but format checking, test execution, and example runs overlap.
#
# Bench baselines: the first run records BENCH_<suite>.json for the
# guarded suites under .bench-baselines/; later runs on the same host
# compare against them via VKSIM_BENCH_BASELINE and fail on a median
# regression beyond VKSIM_BENCH_MAX_REGRESSION percent (default 25 here;
# quick-mode medians are noisy). Delete the file to re-record after an
# intentional change.
#
# Usage: scripts/ci.sh            (from anywhere; cd's to the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

LOGS="$(mktemp -d)"
declare -a names=() pids=()

# bg <name> <cmd...> — launch a stage in the background, log to $LOGS.
bg() {
    local name="$1"
    shift
    ("$@") >"$LOGS/$name.log" 2>&1 &
    names+=("$name")
    pids+=($!)
}

# join — wait for every background stage, replay logs, abort on failure.
join() {
    local fail=0 status
    for i in "${!pids[@]}"; do
        if wait "${pids[$i]}"; then status="ok"; else status="FAILED"; fail=1; fi
        step "${names[$i]} ($status)"
        cat "$LOGS/${names[$i]}.log"
    done
    names=()
    pids=()
    if [ "$fail" -ne 0 ]; then
        printf '\nCI gate FAILED.\n'
        exit 1
    fi
}

# Stage group 1: format check needs no build artifacts — overlap it with
# the release build and the lint gate (clippy builds its own debug-profile
# artifacts, so it shares little with the release build beyond the lock).
bg "cargo fmt --check" cargo fmt --check
bg "cargo clippy --offline --workspace -D warnings" \
    cargo clippy --offline --workspace --all-targets -- -D warnings
bg "cargo build --release --offline --workspace" \
    cargo build --release --offline --workspace
join

step "cargo test --offline --workspace -q"
cargo test --offline --workspace -q

step "golden-counter regression suite (incl. threads=1 vs 4 equality)"
cargo test --offline -q -p vksim-bench --test golden_counters

# Fault-injection smoke: one drill per fault class (dropped completion,
# stalled warp, worker panic on both engines, truncated program,
# corrupted BVH) — each must end in a classified SimError with a
# parseable post-mortem dump, never a raw panic or a hang.
step "fault-injection drills (classified errors + post-mortem dumps)"
VKSIM_DUMP_DIR="$(mktemp -d)" \
    cargo test --offline -q -p vksim-bench --test fault_injection

# Observability gate: a traced run must complete, write a parseable
# Perfetto trace + interval CSV, and (per tests/trace_export.rs, which
# also runs here) be byte-deterministic, thread-invariant and a pure
# observer of the golden counters.
step "traced smoke run + trace validation"
trace_dir="$(mktemp -d)"
VKSIM_TRACE_CSV="$trace_dir/intervals.csv" \
    cargo run --release --offline -p vksim-bench --bin experiments -- \
    fig01 --trace="$trace_dir/trace.json" --trace-interval=256 >/dev/null
[ -s "$trace_dir/trace.json" ] || { echo "no trace written"; exit 1; }
[ -s "$trace_dir/intervals.csv" ] || { echo "no interval CSV written"; exit 1; }
head -1 "$trace_dir/intervals.csv" | grep -q '^start,len,' \
    || { echo "malformed interval CSV header"; exit 1; }
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$trace_dir/trace.json" >/dev/null \
        || { echo "trace JSON does not parse"; exit 1; }
fi
cargo test --offline -q -p vksim-bench --test trace_export

# Profiler gate: a cycle-accounting run must export a flat-JSON stall
# breakdown that parses with the testkit's strict JSON reader, carries
# the documented key schema, and conserves (Σ categories ==
# num_sms × cycles, per-SM keys rolling up exactly into total.*) — the
# validation lives in tests/prof_smoke.rs and runs here against the file
# the experiments *binary* wrote, proving the whole VKSIM_PROF pipeline.
step "cycle-accounting smoke run + prof export validation"
prof_dir="$(mktemp -d)"
cargo run --release --offline -p vksim-bench --bin experiments -- \
    fig01 --prof="$prof_dir/prof.json" >/dev/null
[ -s "$prof_dir/prof.json" ] || { echo "no prof export written"; exit 1; }
VKSIM_PROF_SMOKE_FILE="$prof_dir/prof.json" \
    cargo test --offline -q -p vksim-bench --test prof_smoke

# RT-analytics gate: a ray-traversal characterization run must export a
# flat-JSON analytics file and a heatmap CSV that parse, carry the
# documented key schema, and conserve (heatmap visits == Σ per-ray node
# counts, Σ per-ray box tests == RT-unit box ops, every histogram
# totalling the ray count) — the validation lives in
# tests/rt_analytics.rs and runs here against the files the experiments
# *binary* wrote, proving the whole VKSIM_RT_ANALYTICS pipeline.
step "rt-analytics smoke run + export validation"
rt_dir="$(mktemp -d)"
cargo run --release --offline -p vksim-bench --bin experiments -- \
    fig01 --rt-analytics="$rt_dir/rt.json" --rt-heatmap="$rt_dir/heatmap.csv" >/dev/null
[ -s "$rt_dir/rt.json" ] || { echo "no rt analytics export written"; exit 1; }
[ -s "$rt_dir/heatmap.csv" ] || { echo "no rt heatmap written"; exit 1; }
head -1 "$rt_dir/heatmap.csv" | grep -q '^space,depth,node,visits,hits$' \
    || { echo "malformed rt heatmap header"; exit 1; }
VKSIM_RT_SMOKE_FILE="$rt_dir/rt.json" \
    cargo test --offline -q -p vksim-bench --test rt_analytics

# Chaos recovery drill: a fixed-seed campaign kills checkpointed runs
# with injected worker panics at pseudo-random cycles, auto-resumes each
# from its last checkpoint, and requires the recovered golden counters to
# match the uninterrupted reference byte for byte (plus checkpoint
# idempotency and corrupt-snapshot rejection, per
# tests/snapshot_recovery.rs).
step "chaos checkpoint/recovery campaign (VKSIM_CHAOS_ITERS=5)"
VKSIM_CHAOS_ITERS=5 VKSIM_DUMP_DIR="$(mktemp -d)" \
    cargo test --offline -q -p vksim-bench --test snapshot_recovery

# Stage group 2: bench smoke and example runs only execute already-built
# (or cheaply built) artifacts — overlap them.
bench_out="$(mktemp -d)"
bg "bench smoke run (VKSIM_BENCH_QUICK=1)" \
    env VKSIM_BENCH_DIR="$bench_out" VKSIM_BENCH_QUICK=1 \
    cargo bench --offline --workspace
bg "examples build + run (quickstart, custom_scene)" bash -c '
    set -euo pipefail
    cargo build --release --offline --examples
    cargo run --release --offline --example quickstart >/dev/null
    cargo run --release --offline --example custom_scene >/dev/null
'
join

step "bench baseline gate (substrates, engine, mem)"
mkdir -p .bench-baselines
for suite in substrates engine mem; do
    # Absolute path: cargo runs bench binaries with cwd = the package root
    # (crates/bench), not the workspace root.
    base="$PWD/.bench-baselines/BENCH_$suite.json"
    # The engine suite doubles as the observability overhead gate: the
    # tracing/accounting/rt-analytics hooks must cost no more than 2%
    # when disabled, and the enabled-path `_prof` / `_rt` entries hold
    # each observer's own cost to the same bound against their recorded
    # baselines.
    if [ "$suite" = engine ]; then
        max="${VKSIM_BENCH_MAX_REGRESSION_ENGINE:-2}"
    else
        max="${VKSIM_BENCH_MAX_REGRESSION:-25}"
    fi
    if [ -f "$base" ]; then
        VKSIM_BENCH_DIR="$(mktemp -d)" VKSIM_BENCH_QUICK=1 \
            VKSIM_BENCH_BASELINE="$base" \
            VKSIM_BENCH_MAX_REGRESSION="$max" \
            cargo bench --offline -p vksim-bench --bench "$suite"
    else
        cp "$bench_out/BENCH_$suite.json" "$base"
        echo "recorded new baseline $base (no compare this run)"
    fi
done

printf '\nCI gate passed.\n'
