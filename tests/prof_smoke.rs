//! Schema + conservation validation for the `VKSIM_PROF` flat-JSON export.
//!
//! Two modes:
//!
//! * Self-contained (default): runs the TRI workload with accounting on,
//!   exports the breakdown to a temp file through the same
//!   `VKSIM_PROF`-driven path the CLI uses, and validates it.
//! * CI smoke: when `VKSIM_PROF_SMOKE_FILE` names a file (written by a
//!   separate `vksim-experiments --prof=...` invocation in
//!   `scripts/ci.sh`), validates that file instead — proving the whole
//!   binary-to-disk pipeline, not just the library path.
//!
//! Validation is the profiler's external contract: the file parses with
//! the testkit's strict flat-JSON reader, carries the documented key
//! schema, and conserves — merged categories sum to `num_sms × cycles`
//! and per-SM keys roll up exactly into the `total.*` keys.

use std::collections::BTreeMap;
use vksim_bench::run_workload;
use vksim_core::SimConfig;
use vksim_scenes::{Scale, WorkloadKind};
use vksim_testkit::json::parse_flat_u64_object;

const CATEGORIES: [&str; 7] = [
    "issued",
    "mem_stall",
    "rt_stall",
    "icnt_stall",
    "simt_sync",
    "no_eligible_warp",
    "drained",
];

/// Asserts the documented schema and the conservation invariant on a
/// parsed flat prof export.
fn validate(m: &BTreeMap<String, u64>) {
    let cycles = *m.get("cycles").expect("`cycles` key");
    let num_sms = *m.get("num_sms").expect("`num_sms` key");
    assert!(cycles > 0 && num_sms > 0);
    assert!(m.contains_key("issued_insts"));
    assert!(m.contains_key("issued_lanes"));

    // Conservation: Σ total.<cat> == num_sms × cycles, exactly.
    let merged: u64 = CATEGORIES
        .iter()
        .map(|c| *m.get(&format!("total.{c}")).expect("total category key"))
        .sum();
    assert_eq!(
        merged,
        num_sms * cycles,
        "cycle accounting leaked: Σ total.* != num_sms × cycles"
    );
    assert!(m.contains_key("total.resident_warp_cycles"));
    assert!(m.contains_key("total.eligible_warp_cycles"));

    // Per-SM keys exist for every SM and roll up exactly into total.*.
    for cat in CATEGORIES {
        let per_sm: u64 = (0..num_sms)
            .map(|i| *m.get(&format!("sm{i}.{cat}")).expect("per-SM category key"))
            .sum();
        assert_eq!(per_sm, m[&format!("total.{cat}")], "sm*.{cat} roll-up");
    }

    // No undocumented keys: everything is one of the fixed scalars, a
    // total.* key, or an sm<i>.* key for a valid SM index.
    let field_ok = |f: &str| {
        CATEGORIES.contains(&f) || f == "resident_warp_cycles" || f == "eligible_warp_cycles"
    };
    for k in m.keys() {
        let ok = matches!(
            k.as_str(),
            "cycles" | "num_sms" | "issued_insts" | "issued_lanes"
        ) || k.strip_prefix("total.").is_some_and(field_ok)
            || k.strip_prefix("sm").is_some_and(|rest| {
                rest.split_once('.').is_some_and(|(idx, field)| {
                    idx.parse::<u64>().is_ok_and(|i| i < num_sms) && field_ok(field)
                })
            });
        assert!(ok, "undocumented key in prof export: {k}");
    }
}

#[test]
fn prof_export_parses_and_conserves() {
    let text = match std::env::var("VKSIM_PROF_SMOKE_FILE") {
        // CI mode: validate the file a separate experiments run produced.
        Ok(path) => std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("VKSIM_PROF_SMOKE_FILE {path} unreadable: {e}")),
        // Self-contained mode: export through the library path ourselves.
        Err(_) => {
            let dir = std::env::temp_dir().join(format!("vksim-prof-smoke-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("prof.json");
            let config = SimConfig::test_small().with_prof(path.to_str().unwrap());
            let (_, report) = run_workload(WorkloadKind::Tri, Scale::Test, config);
            assert!(report
                .prof
                .expect("accounting enabled")
                .conservation_holds());
            let text = std::fs::read_to_string(&path).expect("prof export written");
            std::fs::remove_dir_all(&dir).ok();
            text
        }
    };
    let m = parse_flat_u64_object(&text).expect("prof export parses as flat u64 JSON");
    validate(&m);
}
