//! Observability-layer validation: the Chrome trace export must be
//! schema-valid and deterministic, and tracing must be a pure observer —
//! enabling it (at any thread count) may not move a single counter.
//!
//! * Schema: the JSON parses with the in-repo reader, every event carries
//!   `ph`/`pid`, timestamps are nondecreasing per `(pid, tid)` track, and
//!   every `B` has a matching `E` (finalize closes open spans).
//! * Determinism: the serialized trace is byte-identical run-to-run and
//!   across `threads = 1` vs `4` — the same drain-order contract the
//!   golden counters rely on.
//! * Invariance: counter snapshots with tracing on/off, threads 1/4, are
//!   byte-equal.
//! * Flight recorder: an induced hang embeds the last trace events per SM
//!   in the post-mortem dump.

use std::collections::{BTreeMap, BTreeSet};
use vksim_bench::run_workload;
use vksim_core::{RunReport, SimConfig, Simulator, WorkerPanicSpec};
use vksim_scenes::{build, Scale, WorkloadKind};
use vksim_testkit::json::{parse_flat_u64_object, parse_json, JsonValue};
use vksim_trace::{
    chrome_trace_json, hotspot_summary, interval_csv, TraceConfig, TraceReport, ICNT_STALL_TID,
};

/// A test-small config with tracing on (no export files — the report is
/// inspected in-process) and a short sampler period so even the tiny test
/// scene produces several intervals.
fn traced_config(threads: usize) -> SimConfig {
    SimConfig::test_small()
        .with_threads(threads)
        .with_trace(TraceConfig {
            enabled: true,
            interval: 256,
            ..Default::default()
        })
}

fn traced_run(threads: usize) -> RunReport {
    let (_, report) = run_workload(WorkloadKind::Tri, Scale::Test, traced_config(threads));
    report
}

fn trace_of(report: &RunReport) -> &TraceReport {
    report.trace.as_ref().expect("tracing was enabled")
}

/// The same integer-exact counter flattening the golden suite gates on,
/// trimmed to the fields tracing hooks come anywhere near.
fn snapshot(report: &RunReport) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    let gpu = &report.gpu;
    m.insert("gpu.cycles".into(), gpu.cycles);
    m.insert("gpu.issued_insts".into(), gpu.issued_insts);
    m.insert("gpu.rt_busy_cycles".into(), gpu.rt_busy_cycles);
    m.insert(
        "gpu.rt_resident_warp_cycles".into(),
        gpu.rt_resident_warp_cycles,
    );
    m.insert("gpu.rt_ops".into(), gpu.rt_ops);
    m.insert("gpu.rt_chunks_fetched".into(), gpu.rt_chunks_fetched);
    for (k, v) in gpu.counters.iter() {
        m.insert(format!("counter.{k}"), v);
    }
    for (prefix, bag) in [
        ("l1", &gpu.l1_stats),
        ("rtc", &gpu.rtc_stats),
        ("l2", &gpu.l2_stats),
        ("dram", &gpu.dram_stats),
    ] {
        for (k, v) in bag.iter() {
            m.insert(format!("{prefix}.{k}"), v);
        }
    }
    m
}

/// A traced run behind a *bounded* interconnect must surface the SM
/// stall cycles end to end: the `sm.icnt_stall_cycles` counter is
/// nonzero, and the exported Chrome trace carries balanced
/// `icnt_stall` B/E spans on the dedicated per-SM track.
#[test]
fn bounded_icnt_stalls_reach_the_exported_trace() {
    let config = SimConfig::paper()
        .with_icnt_queue_depth(4)
        .with_icnt_return_credits(2)
        .with_trace(TraceConfig {
            enabled: true,
            interval: 256,
            ..Default::default()
        });
    let (_, report) = run_workload(WorkloadKind::Tri, Scale::Test, config);
    assert!(
        report.gpu.counters.get("sm.icnt_stall_cycles") > 0,
        "the bounded paper config stalls SMs"
    );

    let json = chrome_trace_json(trace_of(&report));
    let doc = parse_json(&json).expect("trace JSON parses");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("top-level traceEvents array");
    let (mut begins, mut ends) = (0u64, 0u64);
    for ev in events {
        if ev.get("tid").and_then(JsonValue::as_u64) != Some(ICNT_STALL_TID) {
            continue;
        }
        let name = ev.get("name").and_then(JsonValue::as_str);
        assert_eq!(name, Some("icnt_stall"), "only stall spans on the track");
        match ev.get("ph").and_then(JsonValue::as_str) {
            Some("B") => begins += 1,
            Some("E") => ends += 1,
            other => panic!("unexpected ph {other:?} on the icnt_stall track"),
        }
    }
    assert!(begins > 0, "stalls produced spans");
    assert_eq!(begins, ends, "finalize closes every stall span");
}

#[test]
fn chrome_trace_schema_is_valid() {
    let report = traced_run(1);
    let trace = trace_of(&report);
    assert!(!trace.events.is_empty(), "a real run produces events");
    assert!(!trace.intervals.is_empty(), "sampler produced intervals");

    let json = chrome_trace_json(trace);
    let doc = parse_json(&json).expect("trace JSON parses");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("top-level traceEvents array");
    assert!(!events.is_empty());

    let mut meta_names: Vec<String> = Vec::new();
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut open_spans: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut counter_events = 0usize;
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .expect("every event has ph");
        let pid = ev
            .get("pid")
            .and_then(JsonValue::as_u64)
            .expect("every event has pid");
        assert!(
            pid <= trace.num_sms as u64,
            "pid {pid} beyond the memory pseudo-process"
        );
        if ph == "M" {
            let name = ev
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(JsonValue::as_str)
                .expect("metadata names its process");
            meta_names.push(name.to_string());
            continue;
        }
        let tid = ev.get("tid").and_then(JsonValue::as_u64).expect("tid");
        let ts = ev.get("ts").and_then(JsonValue::as_f64).expect("ts");
        let track = (pid, tid);
        if let Some(&prev) = last_ts.get(&track) {
            assert!(
                ts >= prev,
                "track ({pid},{tid}): ts went backwards {prev} -> {ts}"
            );
        }
        last_ts.insert(track, ts);
        match ph {
            "B" => *open_spans.entry(track).or_default() += 1,
            "E" => {
                let open = open_spans
                    .get_mut(&track)
                    .expect("E only on a track that opened a span");
                assert!(*open > 0, "track ({pid},{tid}): unmatched E");
                *open -= 1;
            }
            "X" => {
                assert!(
                    ev.get("dur").and_then(JsonValue::as_u64).is_some(),
                    "complete events carry a duration"
                );
            }
            "C" => {
                counter_events += 1;
                assert_eq!(pid, trace.num_sms as u64, "counters live in Memory");
                assert!(ev
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(JsonValue::as_f64)
                    .is_some());
            }
            "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(
        open_spans.values().all(|&n| n == 0),
        "finalize must close every span: {open_spans:?}"
    );
    assert_eq!(
        meta_names.len(),
        trace.num_sms as usize + 1,
        "one process_name per SM plus Memory"
    );
    assert!(meta_names.iter().any(|n| n == "Memory"));
    assert_eq!(
        counter_events,
        trace.intervals.len() * 5,
        "five counter series per sampled interval"
    );
}

#[test]
fn trace_is_deterministic_and_thread_invariant() {
    let a = traced_run(1);
    let b = traced_run(1);
    let c = traced_run(4);
    let json_a = chrome_trace_json(trace_of(&a));
    assert_eq!(
        json_a,
        chrome_trace_json(trace_of(&b)),
        "trace JSON must be byte-identical run-to-run"
    );
    assert_eq!(
        json_a,
        chrome_trace_json(trace_of(&c)),
        "threads=1 and threads=4 must serialize the identical trace"
    );
    assert_eq!(interval_csv(trace_of(&a)), interval_csv(trace_of(&c)));
}

/// The partitioned memory path (8 partitions, FR-FCFS) must serialize a
/// byte-identical trace run-to-run and across thread counts — partition
/// IDs on MSHR and row-activate events included.
#[test]
fn partitioned_trace_is_byte_deterministic() {
    let config = |threads: usize| {
        SimConfig::paper()
            .with_threads(threads)
            .with_trace(TraceConfig {
                enabled: true,
                interval: 256,
                ..Default::default()
            })
    };
    let run = |threads| run_workload(WorkloadKind::Tri, Scale::Test, config(threads)).1;
    let a = run(1);
    let b = run(1);
    let c = run(4);
    let json_a = chrome_trace_json(trace_of(&a));
    assert!(
        json_a.contains("\"partition\""),
        "partitioned trace must carry partition IDs"
    );
    assert_eq!(
        json_a,
        chrome_trace_json(trace_of(&b)),
        "partitioned trace JSON must be byte-identical run-to-run"
    );
    assert_eq!(
        json_a,
        chrome_trace_json(trace_of(&c)),
        "threads=1 and threads=4 must serialize the identical partitioned trace"
    );
    assert_eq!(interval_csv(trace_of(&a)), interval_csv(trace_of(&c)));
}

#[test]
fn tracing_does_not_change_counters() {
    let (_, base) = run_workload(WorkloadKind::Tri, Scale::Test, SimConfig::test_small());
    assert!(base.trace.is_none(), "tracing is off by default");
    let golden = snapshot(&base);
    for (label, report) in [
        ("trace on, threads 1", traced_run(1)),
        ("trace on, threads 4", traced_run(4)),
    ] {
        assert_eq!(
            golden,
            snapshot(&report),
            "{label}: tracing must be a pure observer"
        );
    }
}

#[test]
fn csv_and_summary_are_well_formed() {
    let report = traced_run(1);
    let trace = trace_of(&report);
    let csv = interval_csv(trace);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(
        lines.len(),
        trace.intervals.len() + 1,
        "header + one row each"
    );
    let cols = lines[0].split(',').count();
    for line in &lines[1..] {
        assert_eq!(line.split(',').count(), cols, "ragged CSV row: {line}");
    }
    let summary = hotspot_summary(trace, 5);
    assert!(summary.contains("hottest PCs"));
    assert!(summary.contains("longest-stalled warps"));
    assert!(summary.contains("RT-occupancy"));
}

#[test]
fn exporter_writes_requested_files() {
    let dir = std::env::temp_dir();
    let out = dir.join(format!("vksim_trace_export_{}.json", std::process::id()));
    let csv = dir.join(format!("vksim_trace_export_{}.csv", std::process::id()));
    let mut cfg = traced_config(1);
    cfg.gpu.trace.out = Some(out.to_string_lossy().into_owned());
    cfg.gpu.trace.csv = Some(csv.to_string_lossy().into_owned());
    let w = build(WorkloadKind::Tri, Scale::Test);
    Simulator::new(cfg)
        .run(&w.device, &w.cmd)
        .expect("healthy run");
    let text = std::fs::read_to_string(&out).expect("Chrome trace file written");
    parse_json(&text).expect("written trace parses");
    let csv_text = std::fs::read_to_string(&csv).expect("CSV written");
    assert!(csv_text.starts_with("start,len,"));
    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_file(&csv);
}

/// Streaming export: with an out file configured, event chunks are
/// flushed at interval boundaries instead of accumulating in RAM, and
/// the finished file must be byte-identical to the one-shot
/// serialization of an identical in-memory run.
#[test]
fn streamed_export_is_byte_identical_to_one_shot() {
    let out = std::env::temp_dir().join(format!(
        "vksim_stream_vs_oneshot_{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&out);
    let w = build(WorkloadKind::Tri, Scale::Test);
    let mut cfg = traced_config(1);
    cfg.gpu.trace.out = Some(out.to_string_lossy().into_owned());
    let streamed = Simulator::new(cfg)
        .run(&w.device, &w.cmd)
        .expect("healthy run");
    let trace = trace_of(&streamed);
    assert!(
        trace.streamed,
        "out file puts the collector in streaming mode"
    );
    assert!(
        trace.flushed > 0,
        "interval boundaries flushed event chunks"
    );
    assert!(
        trace.events.is_empty(),
        "flushed events left RAM ({} remained)",
        trace.events.len()
    );
    let in_memory = Simulator::new(traced_config(1))
        .run(&w.device, &w.cmd)
        .expect("healthy run");
    assert_eq!(
        std::fs::read_to_string(&out).expect("streamed file written"),
        chrome_trace_json(trace_of(&in_memory)),
        "streamed file must be byte-identical to the one-shot export"
    );
    let _ = std::fs::remove_file(&out);
}

/// Interval-sampler continuity across checkpoint/resume: a traced run
/// killed mid-flight and resumed from its last checkpoint must serialize
/// the identical interval CSV and Chrome trace as an uninterrupted run.
/// The checkpoint period (300) is deliberately *not* a multiple of the
/// sampler interval (256), so every resume lands mid-interval — a resume
/// that reset the sampler cursor would emit a duplicate or short row, and
/// one that reset the saturating-delta baselines would inflate the first
/// post-resume deltas.
#[test]
fn sampler_survives_resume_without_duplicate_intervals() {
    let w = build(WorkloadKind::Tri, Scale::Test);
    let reference = Simulator::new(traced_config(1))
        .run(&w.device, &w.cmd)
        .expect("healthy run");
    let dir = std::env::temp_dir().join(format!("vksim-trace-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = || {
        let mut c = traced_config(1).with_checkpoint(300, dir.to_string_lossy().to_string());
        c.gpu.fault_plan.worker_panic = Some(WorkerPanicSpec {
            sm: 0,
            cycle: (reference.gpu.cycles * 2 / 3).max(301),
        });
        c
    };
    Simulator::new(cfg())
        .run(&w.device, &w.cmd)
        .expect_err("injected panic kills the run");
    let last_ckpt = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "vksnap"))
        .max_by_key(|p| {
            p.file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| s.strip_prefix("ckpt-"))
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0)
        })
        .expect("checkpoint written before the kill");
    let resumed = Simulator::new(cfg())
        .resume(&w.device, &w.cmd, &last_ckpt)
        .expect("resume completes");
    let csv = interval_csv(trace_of(&resumed));
    assert_eq!(
        interval_csv(trace_of(&reference)),
        csv,
        "resumed interval series must be byte-identical to uninterrupted"
    );
    let starts: Vec<&str> = csv
        .lines()
        .skip(1)
        .map(|l| l.split(',').next().unwrap())
        .collect();
    let unique: BTreeSet<&&str> = starts.iter().collect();
    assert_eq!(starts.len(), unique.len(), "no duplicated interval rows");
    assert_eq!(
        chrome_trace_json(trace_of(&reference)),
        chrome_trace_json(trace_of(&resumed)),
        "resumed Chrome trace must be byte-identical to uninterrupted"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Streamed-file continuity across checkpoint/resume: the doomed run
/// keeps flushing chunks past the checkpoint (and even finalizes its
/// file on the fault path), so the resume must reopen the file,
/// truncate back to the checkpointed byte cursor, and continue — ending
/// with a file byte-identical to an uninterrupted streamed run's.
#[test]
fn streamed_file_survives_resume_byte_identically() {
    let tmp = std::env::temp_dir();
    let ref_out = tmp.join(format!("vksim_stream_ref_{}.json", std::process::id()));
    let out = tmp.join(format!("vksim_stream_resume_{}.json", std::process::id()));
    let dir = tmp.join(format!("vksim-stream-resume-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_file(&ref_out);
    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let w = build(WorkloadKind::Tri, Scale::Test);
    let mut ref_cfg = traced_config(1);
    ref_cfg.gpu.trace.out = Some(ref_out.to_string_lossy().into_owned());
    let reference = Simulator::new(ref_cfg)
        .run(&w.device, &w.cmd)
        .expect("healthy run");
    assert!(trace_of(&reference).streamed);
    let want = std::fs::read_to_string(&ref_out).expect("reference streamed file");
    let cfg = || {
        let mut c = traced_config(1).with_checkpoint(300, dir.to_string_lossy().to_string());
        c.gpu.trace.out = Some(out.to_string_lossy().into_owned());
        c.gpu.fault_plan.worker_panic = Some(WorkerPanicSpec {
            sm: 0,
            cycle: (reference.gpu.cycles * 2 / 3).max(301),
        });
        c
    };
    Simulator::new(cfg())
        .run(&w.device, &w.cmd)
        .expect_err("injected panic kills the run");
    let last_ckpt = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "vksnap"))
        .max_by_key(|p| {
            p.file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| s.strip_prefix("ckpt-"))
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0)
        })
        .expect("checkpoint written before the kill");
    let resumed = Simulator::new(cfg())
        .resume(&w.device, &w.cmd, &last_ckpt)
        .expect("resume completes");
    assert!(trace_of(&resumed).streamed);
    assert_eq!(
        std::fs::read_to_string(&out).expect("resumed streamed file"),
        want,
        "resumed streamed file must be byte-identical to uninterrupted"
    );
    let _ = std::fs::remove_file(&ref_out);
    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_dump_embeds_flight_recorder() {
    let w = build(WorkloadKind::Tri, Scale::Test);
    let mut cfg = traced_config(1);
    cfg.gpu.watchdog_cycles = 2_000;
    cfg.gpu.fault_plan.stall_warp = Some(0);
    let failure = Simulator::new(cfg)
        .run(&w.device, &w.cmd)
        .expect_err("stalled warp must livelock");
    let path = failure
        .dump
        .as_ref()
        .expect("classified fault writes a dump");
    let text = std::fs::read_to_string(path).expect("dump readable");
    let dump = parse_flat_u64_object(&text).expect("dump stays flat JSON with tracing on");
    assert!(
        dump.contains_key("sm0.trace.ev0.cycle"),
        "flight recorder events embedded in the dump"
    );
    assert!(dump.contains_key("sm0.trace.ev0.kind"));
    for (k, v) in &dump {
        if k.contains(".trace.ev") && k.ends_with(".kind") {
            assert!(*v <= 12, "{k}: kind code {v} out of range");
        }
    }
}
