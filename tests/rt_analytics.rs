//! Schema + conservation validation for the `VKSIM_RT_ANALYTICS`
//! flat-JSON export.
//!
//! Two modes, mirroring `tests/prof_smoke.rs`:
//!
//! * Self-contained (default): runs the TRI workload with analytics on,
//!   exports through the same `VKSIM_RT_ANALYTICS`-driven path the CLI
//!   uses, and validates the file.
//! * CI smoke: when `VKSIM_RT_SMOKE_FILE` names a file (written by a
//!   separate `vksim-experiments --rt-analytics=...` invocation in
//!   `scripts/ci.sh`), validates that file instead — proving the whole
//!   binary-to-disk pipeline, not just the library path.
//!
//! Validation is the analytics layer's external contract: the file
//! parses with the testkit's strict flat-JSON reader, carries the
//! documented key schema, and conserves — the heatmap and the per-ray
//! histograms tally the same traversal from independent legs, per-ray
//! box tests equal the RT unit's operation count, and every per-SM
//! series rolls up exactly into its merged total.
//!
//! The property test at the bottom re-proves conservation across the
//! configuration space (workload × RT-warp limit × threads × divergence
//! mode), not just on the golden configs.

use std::collections::BTreeMap;
use vksim_bench::run_workload;
use vksim_core::SimConfig;
use vksim_scenes::{Scale, WorkloadKind};
use vksim_testkit::json::parse_flat_u64_object;
use vksim_testkit::prop::{check_with, map, u32_in, Config};
use vksim_testkit::prop_assert;
use vksim_trace::{RAY_HIST_BUCKETS, WARP_OCC_BUCKETS};

const HISTS: [&str; 4] = ["nodes", "box", "tri", "restarts"];

/// Asserts the documented schema and every conservation leg on a parsed
/// flat rt-analytics export.
fn validate(m: &BTreeMap<String, u64>) {
    let num_sms = *m.get("num_sms").expect("`num_sms` key");
    let rays = *m.get("rays").expect("`rays` key");
    assert!(num_sms > 0);
    assert!(rays > 0, "smoke workloads trace rays");

    // Leg 1: the per-node heatmap and the per-ray node counts tally the
    // same traversal from independent recording points.
    assert_eq!(
        m["heatmap.visits"], m["nodes_visited"],
        "heatmap visits vs per-ray node counts"
    );
    assert!(m["heatmap.hits"] <= m["heatmap.visits"]);
    assert!(m["heatmap.cells"] <= m["heatmap.visits"]);
    // Leg 2: every internal-node visit is exactly one RT-unit box op.
    assert_eq!(
        m["box_tests"], m["rtu.box_ops"],
        "per-ray box tests vs rt-unit box ops"
    );
    // Leg 3: every ray lands in every histogram exactly once.
    for h in HISTS {
        let total: u64 = (0..RAY_HIST_BUCKETS)
            .map(|i| m[&format!("hist.{h}.b{i}")])
            .sum();
        assert_eq!(total, rays, "hist.{h} must count every ray once");
    }
    // The per-level depth profile partitions the heatmap total.
    let level_visits: u64 = m
        .iter()
        .filter(|(k, _)| {
            (k.starts_with("tlas.l") || k.starts_with("blas.l")) && k.ends_with(".visits")
        })
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(level_visits, m["heatmap.visits"], "depth-profile roll-up");
    // Warp-coherence integrals: the occupancy tally is the step-count
    // histogram, so its weighted sum is the lane-step integral and its
    // plain sum the step count (no step has zero active lanes).
    let lane_integral: u64 = (1..WARP_OCC_BUCKETS)
        .map(|n| n as u64 * m[&format!("warp.occ{n}")])
        .sum();
    assert_eq!(lane_integral, m["warp.lane_steps"], "occupancy integral");
    let occ_total: u64 = (1..WARP_OCC_BUCKETS)
        .map(|n| m[&format!("warp.occ{n}")])
        .sum();
    assert_eq!(occ_total, m["warp.warp_steps"], "occupancy step count");
    // Per-SM roll-ups are exact.
    for (field, total_key) in [
        ("trace_warps", "warp.trace_warps"),
        ("warp_steps", "warp.warp_steps"),
        ("lane_steps", "warp.lane_steps"),
    ] {
        let sum: u64 = (0..num_sms).map(|i| m[&format!("sm{i}.{field}")]).sum();
        assert_eq!(sum, m[total_key], "sm*.{field} roll-up");
    }
    for field in ["jobs", "steps", "latency"] {
        let sum: u64 = (0..num_sms).map(|i| m[&format!("sm{i}.rtu.{field}")]).sum();
        assert_eq!(sum, m[&format!("rtu.{field}")], "sm*.rtu.{field} roll-up");
    }

    // No undocumented keys: everything is a fixed scalar, a histogram
    // bucket, a depth-profile key, an occupancy tally, or a per-SM key
    // for a valid SM index.
    let sm_field_ok = |f: &str| {
        matches!(f, "trace_warps" | "warp_steps" | "lane_steps")
            || matches!(f, "rtu.jobs" | "rtu.steps" | "rtu.latency")
    };
    let level_ok = |rest: &str| {
        rest.strip_prefix("l").is_some_and(|rest| {
            rest.split_once('.').is_some_and(|(d, field)| {
                d.parse::<u32>().is_ok() && matches!(field, "visits" | "lines")
            })
        })
    };
    for k in m.keys() {
        let ok = matches!(
            k.as_str(),
            "num_sms"
                | "rays"
                | "nodes_visited"
                | "box_tests"
                | "triangle_tests"
                | "restarts"
                | "heatmap.cells"
                | "heatmap.visits"
                | "heatmap.hits"
                | "rtu.box_ops"
                | "rtu.jobs"
                | "rtu.steps"
                | "rtu.latency"
                | "warp.trace_warps"
                | "warp.warp_steps"
                | "warp.lane_steps"
        ) || k.strip_prefix("hist.").is_some_and(|rest| {
            rest.split_once(".b").is_some_and(|(h, i)| {
                HISTS.contains(&h) && i.parse::<usize>().is_ok_and(|i| i < RAY_HIST_BUCKETS)
            })
        }) || k.strip_prefix("tlas.").is_some_and(level_ok)
            || k.strip_prefix("blas.").is_some_and(level_ok)
            || k.strip_prefix("warp.occ").is_some_and(|n| {
                n.parse::<usize>()
                    .is_ok_and(|n| (1..WARP_OCC_BUCKETS).contains(&n))
            })
            || k.strip_prefix("sm").is_some_and(|rest| {
                rest.split_once('.').is_some_and(|(idx, field)| {
                    idx.parse::<u64>().is_ok_and(|i| i < num_sms) && sm_field_ok(field)
                })
            });
        assert!(ok, "undocumented key in rt analytics export: {k}");
    }
}

#[test]
fn rt_export_parses_and_conserves() {
    let text = match std::env::var("VKSIM_RT_SMOKE_FILE") {
        // CI mode: validate the file a separate experiments run produced.
        Ok(path) => std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("VKSIM_RT_SMOKE_FILE {path} unreadable: {e}")),
        // Self-contained mode: export through the library path ourselves.
        Err(_) => {
            let dir = std::env::temp_dir().join(format!("vksim-rt-smoke-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("rt.json");
            let config = SimConfig::test_small().with_rt(path.to_str().unwrap());
            let (_, report) = run_workload(WorkloadKind::Tri, Scale::Test, config);
            assert!(report.rt.expect("analytics enabled").conservation_holds());
            let text = std::fs::read_to_string(&path).expect("rt export written");
            std::fs::remove_dir_all(&dir).ok();
            text
        }
    };
    let m = parse_flat_u64_object(&text).expect("rt export parses as flat u64 JSON");
    validate(&m);
}

/// Conservation is a structural invariant, not a property of the golden
/// configs: any workload under any (RT-warp limit, thread count,
/// divergence mode) combination must produce an export whose legs agree.
#[test]
fn rt_conservation_holds_across_configs() {
    let strat = map(
        (
            u32_in(0, WorkloadKind::ALL.len() as u32 - 1),
            u32_in(1, 20),
            u32_in(0, 1),
            u32_in(0, 1),
        ),
        |(w, warps, threads, its)| {
            (
                WorkloadKind::ALL[w as usize],
                warps as usize,
                if threads == 0 { 1usize } else { 4 },
                its == 1,
            )
        },
    );
    // Each case is a full simulation; keep the count CI-sized.
    let config = Config {
        cases: 8,
        ..Config::from_env()
    };
    check_with(config, &strat, |&(kind, warps, threads, its)| {
        let sim = SimConfig::test_small()
            .with_rt_analytics(true)
            .with_rt_max_warps(warps)
            .with_threads(threads)
            .with_its(its);
        let (_, report) = run_workload(kind, Scale::Test, sim);
        let rt = report.rt.expect("analytics enabled");
        prop_assert!(
            rt.conservation_holds(),
            "conservation violated for {kind:?} warps={warps} threads={threads} its={its}"
        );
        validate(&rt.flat_map());
        Ok(())
    });
}
