//! Checkpoint/restore validation: deterministic crash recovery.
//!
//! The contract under test: a run killed at an arbitrary point and resumed
//! from its last checkpoint produces **byte-identical** counters, golden
//! snapshots and functional memory to an uninterrupted run — on the serial
//! reference engine (threads = 1) and the parallel engine (threads = 4),
//! on the paper-scale partitioned config and the bounded-interconnect
//! config whose backpressure state must survive the snapshot.
//!
//! * Observer purity: enabling checkpointing moves no counter.
//! * Resume equivalence: complete a checkpointed run, re-run from an
//!   intermediate checkpoint, demand byte-equal snapshots.
//! * Idempotency: two resumes from the same checkpoint agree, and the
//!   checkpoint files a resumed run rewrites are byte-identical to the
//!   originals.
//! * Chaos: a fixed-seed campaign (`VKSIM_CHAOS_ITERS` iterations) injects
//!   worker panics at pseudo-random cycles, auto-resumes from the last
//!   checkpoint, and gates the final counters against the uninterrupted
//!   run.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use vksim_core::{RunReport, SimConfig, SimError, Simulator, WorkerPanicSpec};
use vksim_scenes::{build, Scale, Workload, WorkloadKind};

/// The golden-suite counter flattening: every integer-exact quantity the
/// drift gate pins, so "recovered run matches" means matches at golden
/// granularity, not just headline cycles.
fn snapshot(report: &RunReport) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    let gpu = &report.gpu;
    m.insert("gpu.cycles".into(), gpu.cycles);
    m.insert("gpu.issued_insts".into(), gpu.issued_insts);
    m.insert("gpu.rt_busy_cycles".into(), gpu.rt_busy_cycles);
    m.insert(
        "gpu.rt_resident_warp_cycles".into(),
        gpu.rt_resident_warp_cycles,
    );
    m.insert("gpu.rt_ops".into(), gpu.rt_ops);
    m.insert("gpu.rt_chunks_fetched".into(), gpu.rt_chunks_fetched);
    m.insert(
        "gpu.rt_warp_latency.count".into(),
        gpu.rt_warp_latency.count(),
    );
    m.insert(
        "gpu.rt_occupancy.events".into(),
        gpu.rt_occupancy.iter().map(|t| t.len() as u64).sum(),
    );
    for (k, v) in gpu.counters.iter() {
        m.insert(format!("counter.{k}"), v);
    }
    for (prefix, bag) in [
        ("l1", &gpu.l1_stats),
        ("rtc", &gpu.rtc_stats),
        ("l2", &gpu.l2_stats),
        ("dram", &gpu.dram_stats),
    ] {
        for (k, v) in bag.iter() {
            m.insert(format!("{prefix}.{k}"), v);
        }
    }
    let rt = &report.runtime;
    m.insert("runtime.rays".into(), rt.rays);
    m.insert("runtime.nodes_visited".into(), rt.nodes_visited);
    m.insert("runtime.triangle_tests".into(), rt.triangle_tests);
    m.insert("runtime.triangle_hits".into(), rt.triangle_hits);
    m.insert("runtime.misses".into(), rt.misses);
    m.insert("runtime.spill_stores".into(), rt.spill_stores);
    m.insert("runtime.spill_loads".into(), rt.spill_loads);
    m
}

/// A fresh private checkpoint directory per test invocation.
fn ckpt_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vksim-snap-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    dir
}

/// Checkpoint files in `dir`, sorted by checkpoint cycle.
fn checkpoints_in(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut found: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)
        .expect("checkpoint dir readable")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter_map(|p| {
            let cycle = p
                .file_stem()?
                .to_str()?
                .strip_prefix("ckpt-")?
                .parse::<u64>()
                .ok()?;
            Some((cycle, p))
        })
        .collect();
    found.sort();
    found
}

/// The two configurations the tentpole contract names: paper-scale
/// partitioned memory, and the same machine behind a bounded interconnect
/// (ingress queues + return credits must survive the snapshot).
fn named_config(icnt_bounded: bool, threads: usize) -> SimConfig {
    let base = SimConfig::paper().with_threads(threads);
    if icnt_bounded {
        base.with_icnt_queue_depth(4).with_icnt_return_credits(2)
    } else {
        base
    }
}

fn run_plain(config: SimConfig, w: &Workload) -> RunReport {
    Simulator::new(config)
        .run(&w.device, &w.cmd)
        .expect("healthy run")
}

/// Enabling checkpointing must be a pure observer: the checkpointed run's
/// golden snapshot is byte-equal to the plain run's, for both named
/// configs at both thread counts.
#[test]
fn checkpointing_does_not_change_counters() {
    let w = build(WorkloadKind::Tri, Scale::Test);
    for icnt in [false, true] {
        for threads in [1usize, 4] {
            let golden = snapshot(&run_plain(named_config(icnt, threads), &w));
            let dir = ckpt_dir(&format!("pure-{icnt}-{threads}"));
            let cfg =
                named_config(icnt, threads).with_checkpoint(500, dir.to_string_lossy().to_string());
            let report = run_plain(cfg, &w);
            assert!(
                !checkpoints_in(&dir).is_empty(),
                "icnt={icnt} threads={threads}: checkpoints were written"
            );
            assert_eq!(
                golden,
                snapshot(&report),
                "icnt={icnt} threads={threads}: checkpointing moved a counter"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Resume equivalence at a pseudo-random checkpoint: complete a
/// checkpointed run, pick an intermediate checkpoint with a fixed-seed
/// LCG, resume from it, and demand byte-equal golden snapshots and
/// byte-identical later checkpoint files (idempotency).
#[test]
fn resume_from_random_checkpoint_is_bit_identical() {
    let w = build(WorkloadKind::Tri, Scale::Test);
    let mut lcg: u64 = 0xC0FFEE;
    let mut next = |bound: u64| {
        lcg = lcg.wrapping_mul(1664525).wrapping_add(1013904223);
        lcg % bound.max(1)
    };
    for icnt in [false, true] {
        for threads in [1usize, 4] {
            let dir = ckpt_dir(&format!("resume-{icnt}-{threads}"));
            let cfg = || {
                named_config(icnt, threads).with_checkpoint(400, dir.to_string_lossy().to_string())
            };
            let reference = run_plain(cfg(), &w);
            let ckpts = checkpoints_in(&dir);
            assert!(
                ckpts.len() >= 2,
                "icnt={icnt} threads={threads}: expected several checkpoints, got {}",
                ckpts.len()
            );
            let originals: Vec<(u64, Vec<u8>)> = ckpts
                .iter()
                .map(|(c, p)| (*c, std::fs::read(p).expect("checkpoint readable")))
                .collect();
            let pick = &ckpts[next(ckpts.len() as u64 - 1) as usize];
            let resume = |label: &str| {
                Simulator::new(cfg())
                    .resume(&w.device, &w.cmd, &pick.1)
                    .unwrap_or_else(|e| {
                        panic!("icnt={icnt} threads={threads}: {label} resume failed: {e}")
                    })
            };
            let resumed = resume("first");
            assert_eq!(
                snapshot(&reference),
                snapshot(&resumed),
                "icnt={icnt} threads={threads}: resume from cycle {} drifted",
                pick.0
            );
            // The resumed run rewrote every checkpoint after the pick;
            // idempotency demands the rewrites are byte-identical.
            for (cycle, original) in originals.iter().filter(|(c, _)| *c > pick.0) {
                let rewritten = std::fs::read(dir.join(format!("ckpt-{cycle}.vksnap")))
                    .expect("rewritten checkpoint readable");
                assert_eq!(
                    original, &rewritten,
                    "icnt={icnt} threads={threads}: checkpoint at cycle {cycle} \
                     is not idempotent across resume"
                );
            }
            // A second resume from the same file agrees with the first.
            let again = resume("second");
            assert_eq!(
                snapshot(&resumed),
                snapshot(&again),
                "icnt={icnt} threads={threads}: two resumes from one checkpoint disagree"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Ray-traversal analytics must survive kill-and-resume byte-identically
/// and be thread-count invariant: the resumed run's flat rt JSON (every
/// heatmap cell, histogram bucket and per-SM roll-up) equals the
/// uninterrupted run's, at threads = 1 and threads = 4, and both thread
/// counts serialize the identical characterization.
#[test]
fn rt_analytics_survive_resume_and_threads() {
    let w = build(WorkloadKind::Tri, Scale::Test);
    let mut flats: Vec<String> = Vec::new();
    for threads in [1usize, 4] {
        let dir = ckpt_dir(&format!("rt-resume-{threads}"));
        let cfg = || {
            named_config(false, threads)
                .with_rt_analytics(true)
                .with_checkpoint(400, dir.to_string_lossy().to_string())
        };
        let reference = run_plain(cfg(), &w);
        let rt_flat = |r: &RunReport| r.rt.as_ref().expect("analytics enabled").flat_json();
        let want = rt_flat(&reference);
        // Kill the run two-thirds in, resume from the last surviving
        // checkpoint, and demand the identical characterization.
        let mut doomed = cfg();
        doomed.gpu.fault_plan.worker_panic = Some(WorkerPanicSpec {
            sm: 0,
            cycle: (reference.gpu.cycles * 2 / 3).max(401),
        });
        Simulator::new(doomed)
            .run(&w.device, &w.cmd)
            .expect_err("injected panic kills the run");
        let (cycle, last) = checkpoints_in(&dir)
            .into_iter()
            .next_back()
            .expect("checkpoint written before the kill");
        let resumed = Simulator::new(cfg())
            .resume(&w.device, &w.cmd, &last)
            .expect("resume completes");
        assert_eq!(
            want,
            rt_flat(&resumed),
            "threads={threads}: rt analytics drifted across resume from cycle {cycle}"
        );
        flats.push(want);
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(
        flats[0], flats[1],
        "threads=1 and threads=4 must serialize identical rt analytics"
    );
}

/// Fixed-seed chaos campaign: each iteration injects a worker panic at a
/// pseudo-random cycle of a checkpointed run, auto-resumes from the last
/// surviving checkpoint, and gates the recovered counters against the
/// uninterrupted reference. `VKSIM_CHAOS_ITERS` scales the campaign (CI
/// runs more; the default keeps `cargo test` quick).
#[test]
fn chaos_kill_and_resume_recovers_golden_counters() {
    let iters: u64 = std::env::var("VKSIM_CHAOS_ITERS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(2);
    let w = build(WorkloadKind::Tri, Scale::Test);
    let mut lcg: u64 = 0xDEADBEEF;
    let mut next = |bound: u64| {
        lcg = lcg.wrapping_mul(1664525).wrapping_add(1013904223);
        lcg % bound.max(1)
    };
    for iter in 0..iters {
        let icnt = next(2) == 1;
        let threads = if next(2) == 1 { 4 } else { 1 };
        let reference = run_plain(named_config(icnt, threads), &w);
        let every = (reference.gpu.cycles / 6).max(1);
        // Kill somewhere after the first checkpoint and before the end.
        let kill_cycle = every + 1 + next(reference.gpu.cycles.saturating_sub(every + 2));
        let sm = next(48) as usize;
        let dir = ckpt_dir(&format!("chaos-{iter}"));
        let mut cfg =
            named_config(icnt, threads).with_checkpoint(every, dir.to_string_lossy().to_string());
        cfg.gpu.fault_plan.worker_panic = Some(WorkerPanicSpec {
            sm,
            cycle: kill_cycle,
        });
        let failure = Simulator::new(cfg.clone())
            .run(&w.device, &w.cmd)
            .expect_err("injected panic must kill the run");
        assert!(
            matches!(failure.error, SimError::WorkerPanicked { .. }),
            "iter {iter}: unexpected failure class: {failure}"
        );
        let ckpts = checkpoints_in(&dir);
        let (last_cycle, last_path) = ckpts.last().expect("a checkpoint survived the kill");
        assert!(
            *last_cycle <= kill_cycle,
            "iter {iter}: checkpoints stop at the kill"
        );
        // Auto-resume: same config (panic still in the plan — resume must
        // clear it, or the recovery dies at the same cycle again).
        let recovered = Simulator::new(cfg)
            .resume(&w.device, &w.cmd, last_path)
            .unwrap_or_else(|e| panic!("iter {iter}: resume from cycle {last_cycle} failed: {e}"));
        assert_eq!(
            snapshot(&reference),
            snapshot(&recovered),
            "iter {iter}: icnt={icnt} threads={threads} kill@{kill_cycle} sm{sm} \
             resume@{last_cycle}: recovered counters drifted"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A corrupted checkpoint (bit flip in the payload) must be refused with
/// a structured `SnapshotMismatch`, not garbage state.
#[test]
fn corrupt_checkpoint_is_rejected() {
    let w = build(WorkloadKind::Tri, Scale::Test);
    let dir = ckpt_dir("corrupt");
    let cfg = || SimConfig::test_small().with_checkpoint(500, dir.to_string_lossy().to_string());
    run_plain(cfg(), &w);
    let (_, path) = checkpoints_in(&dir).pop().expect("checkpoint written");
    let mut bytes = std::fs::read(&path).expect("checkpoint readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let failure = Simulator::new(cfg())
        .resume(&w.device, &w.cmd, &path)
        .expect_err("corrupt checkpoint must be refused");
    assert!(
        matches!(failure.error, SimError::SnapshotMismatch { .. }),
        "{failure}"
    );
    assert!(failure.report.is_none(), "the run never started");
    let _ = std::fs::remove_dir_all(&dir);
}
