//! Cross-crate integration: every workload runs under the cycle-level
//! timing model with consistent statistics.

use vksim_core::report::{instruction_mix, roofline_point, rt_roofline};
use vksim_core::{MemoryMode, SimConfig, Simulator};
use vksim_scenes::{build, Scale, WorkloadKind};

fn small_sim() -> Simulator {
    Simulator::new(SimConfig::test_small())
}

#[test]
fn all_workloads_complete_under_timing_model() {
    for kind in WorkloadKind::ALL {
        let w = build(kind, Scale::Test);
        let report = small_sim().run(&w.device, &w.cmd).expect("healthy run");
        assert!(report.gpu.cycles > 0, "{}", w.name);
        assert!(report.runtime.rays > 0, "{}", w.name);
        assert!(
            report.gpu.rt_busy_cycles > 0,
            "{} must use the RT units",
            w.name
        );
        assert!(report.gpu.simt_efficiency > 0.0 && report.gpu.simt_efficiency <= 1.0);
    }
}

#[test]
fn instruction_mix_is_alu_dominated_with_rare_traces() {
    // Paper §VI: ~60% ALU, ~25% memory, ~1% trace instructions.
    let w = build(WorkloadKind::Ext, Scale::Test);
    let report = small_sim().run(&w.device, &w.cmd).expect("healthy run");
    let mix = instruction_mix(&report.gpu);
    assert!(mix.alu > 0.35, "ALU share {:.2}", mix.alu);
    assert!(mix.alu > mix.mem, "ALU > memory share");
    assert!(
        mix.trace_ray < 0.10,
        "trace-ray share {:.3} should be small",
        mix.trace_ray
    );
}

#[test]
fn roofline_points_are_memory_bound() {
    // Paper Fig. 12: all workloads fall under the memory bound.
    let w = build(WorkloadKind::Ext, Scale::Test);
    let report = small_sim().run(&w.device, &w.cmd).expect("healthy run");
    let point = roofline_point(&report.gpu);
    let roof = rt_roofline(4, 8, 4);
    assert!(
        roof.is_memory_bound(&point),
        "EXT should be memory bound: {point:?}"
    );
    assert!(roof.utilization(&point) <= 1.0);
}

#[test]
fn memory_limit_studies_order_correctly() {
    // Fig. 15: perfect memory <= perfect BVH <= baseline (within noise,
    // asserted loosely as "not slower by more than 5%").
    let w = build(WorkloadKind::Ref, Scale::Test);
    let base = small_sim()
        .run(&w.device, &w.cmd)
        .expect("healthy run")
        .gpu
        .cycles as f64;
    let pbvh = Simulator::new(SimConfig::test_small().with_memory_mode(MemoryMode::PerfectBvh))
        .run(&w.device, &w.cmd)
        .expect("healthy run")
        .gpu
        .cycles as f64;
    let pmem = Simulator::new(SimConfig::test_small().with_memory_mode(MemoryMode::PerfectMem))
        .run(&w.device, &w.cmd)
        .expect("healthy run")
        .gpu
        .cycles as f64;
    assert!(pbvh <= base * 1.05, "perfect BVH {pbvh} vs baseline {base}");
    assert!(pmem <= base * 1.05, "perfect mem {pmem} vs baseline {base}");
}

#[test]
fn rt_unit_warp_sweep_changes_behaviour() {
    // Fig. 16 mechanism: more concurrent RT warps -> more memory-level
    // parallelism; occupancy integral must grow (or at least not shrink)
    // with the limit.
    let w = build(WorkloadKind::Ref, Scale::Test);
    let one = Simulator::new(SimConfig::test_small().with_rt_max_warps(1))
        .run(&w.device, &w.cmd)
        .expect("healthy run");
    let eight = Simulator::new(SimConfig::test_small().with_rt_max_warps(8))
        .run(&w.device, &w.cmd)
        .expect("healthy run");
    let occ1 = one.gpu.rt_resident_warp_cycles as f64 / one.gpu.rt_busy_cycles.max(1) as f64;
    let occ8 = eight.gpu.rt_resident_warp_cycles as f64 / eight.gpu.rt_busy_cycles.max(1) as f64;
    assert!(
        occ8 >= occ1,
        "occupancy with 8 warps ({occ8:.2}) >= with 1 ({occ1:.2})"
    );
    assert!(
        occ1 <= 1.01,
        "with a 1-warp limit occupancy can't exceed 1: {occ1}"
    );
}

#[test]
fn power_breakdown_matches_paper_shape() {
    // §VI-D: RT units < 1% of power; constant+static dominate.
    let w = build(WorkloadKind::Ext, Scale::Test);
    let report = small_sim().run(&w.device, &w.cmd).expect("healthy run");
    assert!(report.power.fraction("rt_unit") < 0.05);
    let cs = report.power.fraction("constant") + report.power.fraction("static");
    assert!(cs > 0.3, "constant+static fraction {cs:.2}");
}

#[test]
fn dram_stats_are_populated() {
    let w = build(WorkloadKind::Ext, Scale::Test);
    let report = small_sim().run(&w.device, &w.cmd).expect("healthy run");
    assert!(report.gpu.dram_stats.get("req") > 0);
    assert!(report.gpu.dram_efficiency > 0.0 && report.gpu.dram_efficiency <= 1.0);
    assert!(report.gpu.dram_utilization > 0.0 && report.gpu.dram_utilization <= 1.0);
    assert!(report.gpu.dram_efficiency >= report.gpu.dram_utilization);
}

#[test]
fn timing_and_functional_images_agree() {
    for kind in [WorkloadKind::Tri, WorkloadKind::Ref] {
        let w = build(kind, Scale::Test);
        let mut sim = small_sim();
        let (fmem, _) = sim.run_functional(&w.device, &w.cmd).expect("healthy run");
        let report = sim.run(&w.device, &w.cmd).expect("healthy run");
        let n = (w.width * w.height) as usize;
        for i in 0..n {
            let a = fmem.read_u32(w.fb_addr + i as u64 * 4);
            let b = report.memory.read_u32(w.fb_addr + i as u64 * 4);
            assert_eq!(a, b, "{}: pixel {i} timing vs functional", w.name);
        }
    }
}
