//! Fault-injection drills: every injected fault must end in a classified
//! [`SimError`] with a parseable post-mortem dump — never a hang past the
//! watchdog window and never a raw panic.
//!
//! One scenario per fault class (see DESIGN.md "Fault model & watchdog"):
//!
//! * dropped memory completion — a lost MSHR wakeup wedges its warp;
//! * stalled warp — a scheduler that never picks a Ready warp livelocks;
//! * worker panic — a panicking SM tick must not poison the round barrier;
//! * truncated program — the pc walks off the end of the instruction list;
//! * corrupted BVH child pointer — traversal hits an out-of-range node.

use std::collections::BTreeMap;
use vksim_core::{HangClass, SimConfig, SimError, SimFailure, Simulator, WorkerPanicSpec};
use vksim_scenes::{build, Scale, WorkloadKind};
use vksim_testkit::json::parse_flat_u64_object;
use vksim_testkit::prop::{check_with, u64_in, Config};

/// Reads and parses the failure's post-mortem dump, asserting it exists
/// and is a flat `{"name": u64}` JSON object.
fn read_dump(failure: &SimFailure) -> BTreeMap<String, u64> {
    let path = failure
        .dump
        .as_ref()
        .expect("every classified fault writes a post-mortem dump");
    let text = std::fs::read_to_string(path).expect("dump file is readable");
    parse_flat_u64_object(&text).expect("dump is flat JSON")
}

#[test]
fn dropped_completion_is_a_classified_hang() {
    let w = build(WorkloadKind::Tri, Scale::Test);
    let mut cfg = SimConfig::test_small();
    cfg.gpu.watchdog_cycles = 4_000;
    cfg.gpu.fault_plan.drop_nth_completion = Some(3);
    let failure = Simulator::new(cfg)
        .run(&w.device, &w.cmd)
        .expect_err("a lost wakeup must wedge the waiting warp");
    let SimError::Hang { class, window, .. } = failure.error else {
        panic!("expected a hang, got {failure}");
    };
    assert_eq!(
        class,
        HangClass::ScoreboardWedge,
        "no warp is issuable and the memory system is idle"
    );
    assert_eq!(window, 4_000);
    let dump = read_dump(&failure);
    assert!(dump.contains_key("fault.kind"));
    assert!(
        dump.keys().any(|k| k.starts_with("sm0.")),
        "dump snapshots per-SM state"
    );
    let report = failure.report.expect("timing fault keeps partial stats");
    assert!(report.gpu.counters.get("gpu.faults") >= 1);
}

#[test]
fn stalled_warp_is_a_simt_livelock() {
    let w = build(WorkloadKind::Tri, Scale::Test);
    let mut cfg = SimConfig::test_small();
    cfg.gpu.watchdog_cycles = 2_000;
    cfg.gpu.fault_plan.stall_warp = Some(0);
    let failure = Simulator::new(cfg)
        .run(&w.device, &w.cmd)
        .expect_err("an unschedulable Ready warp must livelock");
    assert!(
        matches!(
            failure.error,
            SimError::Hang {
                class: HangClass::SimtLivelock,
                ..
            }
        ),
        "{failure}"
    );
    read_dump(&failure);
}

fn worker_panic_drill(threads: usize) {
    let w = build(WorkloadKind::Tri, Scale::Test);
    let mut cfg = SimConfig::test_small().with_threads(threads);
    cfg.gpu.fault_plan.worker_panic = Some(WorkerPanicSpec { sm: 1, cycle: 10 });
    let failure = Simulator::new(cfg)
        .run(&w.device, &w.cmd)
        .expect_err("injected panic must surface as an error");
    let SimError::WorkerPanicked { sm, ref detail } = failure.error else {
        panic!("expected WorkerPanicked, got {failure}");
    };
    assert_eq!(sm, 1);
    assert!(detail.contains("injected worker panic"), "{detail}");
    read_dump(&failure);
}

#[test]
fn worker_panic_is_contained_on_the_serial_engine() {
    worker_panic_drill(1);
}

#[test]
fn worker_panic_does_not_wedge_the_parallel_barrier() {
    worker_panic_drill(4);
}

#[test]
fn truncated_program_faults_in_the_timing_model() {
    let mut w = build(WorkloadKind::Tri, Scale::Test);
    w.cmd.program = w.cmd.program.truncated(w.cmd.program.len() / 2);
    let failure = Simulator::new(SimConfig::test_small())
        .run(&w.device, &w.cmd)
        .expect_err("half a program cannot reach Exit");
    let SimError::Exec { pc, ref detail, .. } = failure.error else {
        panic!("expected an execution fault, got {failure}");
    };
    assert!(u64::from(pc) >= 1, "faulting pc is recorded");
    assert!(!detail.is_empty());
    read_dump(&failure);
}

#[test]
fn corrupted_bvh_child_pointer_is_an_exec_fault() {
    let mut w = build(WorkloadKind::Ext, Scale::Test);
    let corrupted = w.device.blases.iter_mut().any(|blas| {
        for node in &mut blas.bvh.nodes {
            if let vksim_bvh::node::Node::Internal(internal) = node {
                internal.children[0] = 9_999;
                return true;
            }
        }
        false
    });
    assert!(corrupted, "EXT has at least one internal BLAS node");
    let failure = Simulator::new(SimConfig::test_small())
        .run_functional(&w.device, &w.cmd)
        .expect_err("traversal must reject the wild pointer");
    let SimError::Exec { ref detail, .. } = failure.error else {
        panic!("expected an execution fault, got {failure}");
    };
    assert!(
        detail.contains("acceleration structure traversal failed"),
        "{detail}"
    );
    read_dump(&failure);
}

/// Property: dropping the Nth completion, for any N, either finishes the
/// run normally (the drop was past the last delivery) or ends in a
/// classified hang with a parseable dump — never an unclassified failure.
#[test]
fn any_dropped_completion_terminates_classified() {
    let w = build(WorkloadKind::Tri, Scale::Test);
    let cfg = Config {
        cases: 16,
        max_shrink_iters: 32,
        seed: 11,
    };
    check_with(cfg, &u64_in(1, 60), |&n| {
        let mut sim_cfg = SimConfig::test_small();
        sim_cfg.gpu.watchdog_cycles = 4_000;
        sim_cfg.gpu.fault_plan.drop_nth_completion = Some(n);
        match Simulator::new(sim_cfg).run(&w.device, &w.cmd) {
            Ok(_) => Ok(()),
            Err(failure) => {
                if !matches!(failure.error, SimError::Hang { .. }) {
                    return Err(format!("drop {n}: unclassified failure: {failure}"));
                }
                let path = failure
                    .dump
                    .as_ref()
                    .ok_or_else(|| format!("drop {n}: no post-mortem dump"))?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("drop {n}: unreadable dump: {e}"))?;
                parse_flat_u64_object(&text)
                    .map_err(|e| format!("drop {n}: unparseable dump: {e}"))?;
                Ok(())
            }
        }
    });
}
