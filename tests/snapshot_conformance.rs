//! Cross-host wire-format conformance for the `.vksnap` codec.
//!
//! A golden fixture is checked in under `tests/goldens/codec_v1.vksnap`;
//! it was produced once by [`reference_payload`] and pins the container
//! layout (magic, version, fingerprint, length-prefixed payload, FNV-1a-64
//! checksum) and the byte encoding of **every** `Enc` primitive. The tests
//! decode the fixture field-for-field and demand that the current encoder
//! reproduces it byte-exactly, so a snapshot written on one host restores
//! identically on any other — and a codec change (endianness, width,
//! prefix layout) fails loudly here instead of corrupting checkpoints.
//!
//! After an *intentional* format change (which must also bump
//! [`vksim_snapshot::FORMAT_VERSION`]), regenerate with
//! `VKSIM_BLESS=1 cargo test -p vksim-snapshot --test snapshot_conformance`
//! and commit the new fixture.

use std::path::PathBuf;
use vksim_snapshot::{Dec, Enc, Snapshot, FORMAT_VERSION, MAGIC};

/// Arbitrary but fixed fingerprint stored in the fixture container.
const FINGERPRINT: u64 = 0x0123_4567_89ab_cdef;

fn fixture_path() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/snapshot; the fixture lives with the
    // other goldens at the repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens/codec_v1.vksnap")
}

/// One value through every `Enc` primitive, including boundary values the
/// codec must carry exactly (max-range integers, negative i64, an exact
/// binary float, a non-ASCII string, `None`/`Some` options).
fn reference_payload() -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(0x5a);
    e.bool(true);
    e.bool(false);
    e.u16(0xbeef);
    e.u32(0xdead_beef);
    e.u64(u64::MAX - 1);
    e.i64(-1_234_567_890_123);
    e.usize(123_456);
    e.f32(1.5);
    e.f64(-2.25);
    e.seq(3);
    e.str("vksnap μarch");
    e.bytes(&[1, 2, 3, 4, 5]);
    e.opt_u32(None);
    e.opt_u32(Some(7));
    e.opt_u64(None);
    e.opt_u64(Some(0xffff_ffff_ffff));
    e.into_bytes()
}

/// Decodes `payload` with the mirrored `Dec` calls and asserts every field.
fn assert_decodes_reference(payload: &[u8]) {
    let mut d = Dec::new(payload);
    assert_eq!(d.u8().unwrap(), 0x5a);
    assert!(d.bool().unwrap());
    assert!(!d.bool().unwrap());
    assert_eq!(d.u16().unwrap(), 0xbeef);
    assert_eq!(d.u32().unwrap(), 0xdead_beef);
    assert_eq!(d.u64().unwrap(), u64::MAX - 1);
    assert_eq!(d.i64().unwrap(), -1_234_567_890_123);
    assert_eq!(d.usize().unwrap(), 123_456);
    assert_eq!(d.f32().unwrap(), 1.5);
    assert_eq!(d.f64().unwrap(), -2.25);
    assert_eq!(d.seq().unwrap(), 3);
    assert_eq!(d.str().unwrap(), "vksnap μarch");
    assert_eq!(d.bytes().unwrap(), vec![1, 2, 3, 4, 5]);
    assert_eq!(d.opt_u32().unwrap(), None);
    assert_eq!(d.opt_u32().unwrap(), Some(7));
    assert_eq!(d.opt_u64().unwrap(), None);
    assert_eq!(d.opt_u64().unwrap(), Some(0xffff_ffff_ffff));
    d.finish()
        .expect("no trailing bytes in the reference payload");
}

fn read_fixture_bytes() -> Vec<u8> {
    let path = fixture_path();
    if std::env::var("VKSIM_BLESS").is_ok() {
        Snapshot::new(FINGERPRINT, reference_payload())
            .write_atomic(&path)
            .expect("bless fixture");
    }
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "golden fixture {} unreadable ({e}); regenerate with VKSIM_BLESS=1",
            path.display()
        )
    })
}

/// The checked-in fixture decodes field-for-field: container metadata and
/// every primitive value comes back exactly as encoded.
#[test]
fn golden_fixture_decodes_field_for_field() {
    let bytes = read_fixture_bytes();
    let snap = Snapshot::from_bytes(&bytes).expect("fixture verifies");
    assert_eq!(snap.version, FORMAT_VERSION);
    assert_eq!(snap.fingerprint, FINGERPRINT);
    assert_decodes_reference(&snap.payload);
}

/// The current encoder reproduces the fixture **byte-exactly** — any
/// change to a primitive's width, endianness, or prefix layout diffs here.
#[test]
fn current_encoder_reproduces_fixture_bytes() {
    let bytes = read_fixture_bytes();
    assert_eq!(
        bytes,
        Snapshot::new(FINGERPRINT, reference_payload()).to_bytes(),
        "encoder output drifted from the checked-in codec fixture"
    );
}

/// Pins the container header at raw byte offsets, independent of `Dec`:
/// magic, little-endian version, fingerprint and payload length, and the
/// trailing FNV-1a-64 checksum over everything before it.
#[test]
fn container_layout_is_pinned() {
    let bytes = read_fixture_bytes();
    assert_eq!(&bytes[..8], &MAGIC, "magic");
    assert_eq!(
        u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        FORMAT_VERSION,
        "version field is little-endian at offset 8"
    );
    assert_eq!(
        u64::from_le_bytes(bytes[12..20].try_into().unwrap()),
        FINGERPRINT,
        "fingerprint field is little-endian at offset 12"
    );
    assert_eq!(
        u64::from_le_bytes(bytes[20..28].try_into().unwrap()),
        reference_payload().len() as u64,
        "payload length prefix is little-endian at offset 20"
    );
    let body = &bytes[..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    assert_eq!(
        vksim_snapshot::fnv1a(vksim_snapshot::fnv1a_init(), body),
        stored,
        "trailing checksum is FNV-1a-64 over all prior bytes"
    );
}
