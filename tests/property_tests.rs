//! Property-based tests on core data structures and invariants, running on
//! the in-repo `vksim-testkit` harness (offline, deterministic, replayable
//! via the seed printed on failure).

use vksim_bvh::geometry::Triangle;
use vksim_bvh::traversal::{traverse, TraversalConfig};
use vksim_bvh::{Blas, Instance, Tlas};
use vksim_math::{intersect, Aabb, Mat4x3, Ray, Vec3};
use vksim_testkit::prop::{check, f32_in, f64_in, filter, map, u32_in, u64_in, vec_of, Strategy};
use vksim_testkit::{prop_assert, prop_assert_eq};

fn arb_vec3(range: f32) -> impl Strategy<Value = Vec3> {
    map(
        (
            f32_in(-range, range),
            f32_in(-range, range),
            f32_in(-range, range),
        ),
        |(x, y, z)| Vec3::new(x, y, z),
    )
}

fn arb_triangle() -> impl Strategy<Value = Triangle> {
    map(
        (arb_vec3(10.0), arb_vec3(10.0), arb_vec3(10.0)),
        |(a, b, c)| Triangle::new(a, b, c),
    )
}

fn arb_dir() -> impl Strategy<Value = Vec3> {
    filter(arb_vec3(1.0), "nonzero direction", |d| d.length() > 1e-3)
}

/// Any committed hit from BVH traversal must be reproducible by a
/// brute-force test over all triangles, with the same t (the BVH is an
/// exact accelerator, never an approximation).
#[test]
fn traversal_matches_brute_force() {
    let strat = (vec_of(arb_triangle(), 1, 40), arb_vec3(20.0), arb_dir());
    check(&strat, |(tris, origin, dir)| {
        let blas = Blas::from_triangles(tris);
        let tlas = Tlas::build(vec![Instance::new(0, Mat4x3::IDENTITY)], &[&blas]);
        let ray = Ray::with_interval(*origin, *dir, 1e-3, 1e30);
        let cfg = TraversalConfig {
            record_events: false,
            ..Default::default()
        };
        let result = traverse(&tlas, &[&blas], &ray, &cfg).expect("well-formed scene");

        let mut best: Option<f32> = None;
        for t in tris {
            if let Some(h) = intersect::ray_triangle(&ray, t.v0, t.v1, t.v2) {
                best = Some(best.map_or(h.t, |b: f32| b.min(h.t)));
            }
        }
        match (result.closest, best) {
            (Some(h), Some(t)) => {
                prop_assert!((h.t - t).abs() < 1e-3, "bvh t {} vs brute force {}", h.t, t)
            }
            (None, None) => {}
            (a, b) => {
                prop_assert!(false, "bvh {:?} vs brute force {:?}", a.map(|h| h.t), b)
            }
        }
        Ok(())
    });
}

/// Union is commutative and contains both operands.
#[test]
fn aabb_union_properties() {
    let strat = (
        arb_vec3(50.0),
        arb_vec3(50.0),
        arb_vec3(50.0),
        arb_vec3(50.0),
    );
    check(&strat, |&(a0, a1, b0, b1)| {
        let a = Aabb::new(a0.min(a1), a0.max(a1));
        let b = Aabb::new(b0.min(b1), b0.max(b1));
        let u = a.union(&b);
        prop_assert_eq!(u, b.union(&a));
        prop_assert!(u.contains(a.center()));
        prop_assert!(u.contains(b.center()));
        prop_assert!(u.surface_area() + 1e-3 >= a.surface_area().max(b.surface_area()));
        Ok(())
    });
}

/// Ray-AABB: any reported entry t lies inside (or on) the box.
#[test]
fn ray_aabb_entry_point_is_on_box() {
    let strat = (arb_vec3(30.0), arb_dir(), arb_vec3(10.0), arb_vec3(10.0));
    check(&strat, |&(origin, dir, c0, c1)| {
        let b = Aabb::new(c0.min(c1), c0.max(c1)).padded(1e-3);
        let ray = Ray::with_interval(origin, dir, 0.0, 1e30);
        if let Some(t) = intersect::ray_aabb(&ray, &b, 0.0, 1e30) {
            let p = ray.at(t);
            let eps = 1e-2 * (1.0 + t.abs());
            let inside = b.padded(eps).contains(p);
            prop_assert!(inside, "entry {p} at t={t} outside {b:?}");
        }
        Ok(())
    });
}

/// Affine inverse round-trips points (when invertible).
#[test]
fn mat_inverse_roundtrip() {
    let strat = (arb_vec3(5.0), f32_in(-3.0, 3.0), arb_vec3(10.0));
    check(&strat, |&(t, angle, p)| {
        let m = Mat4x3::translation(t).compose(&Mat4x3::rotation_y(angle));
        let inv = m.inverse().unwrap();
        let q = inv.transform_point(m.transform_point(p));
        prop_assert!((q - p).length() < 1e-3);
        Ok(())
    });
}

/// BVH build invariants hold for arbitrary triangle soups.
#[test]
fn bvh_structural_invariants() {
    check(&vec_of(arb_triangle(), 1, 100), |tris| {
        let blas = Blas::from_triangles(tris);
        prop_assert!(blas.bvh.check_invariants().is_ok());
        // All leaves present exactly once.
        let leaves = blas.bvh.leaf_count();
        prop_assert_eq!(leaves, tris.len());
        // Footprint equals sum of node sizes.
        let bytes: u64 = blas.bvh.nodes.iter().map(|n| n.kind().size_bytes()).sum();
        prop_assert_eq!(bytes, blas.bvh.size_bytes);
        Ok(())
    });
}

/// Histogram count equals number of recorded samples; mean within
/// [min, max].
#[test]
fn histogram_invariants() {
    check(&vec_of(f64_in(0.0, 1e6), 1, 200), |samples| {
        let mut h = vksim_stats::Histogram::new(100.0);
        for &s in samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let mean = h.mean();
        prop_assert!(mean >= h.min().unwrap() - 1e-9);
        prop_assert!(mean <= h.max().unwrap() + 1e-9);
        let total: u64 = h.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, h.count());
        Ok(())
    });
}

/// Pearson correlation is symmetric and bounded.
#[test]
fn pearson_properties() {
    let pair = (f64_in(-1e3, 1e3), f64_in(-1e3, 1e3));
    check(&vec_of(pair, 3, 50), |pairs| {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = vksim_stats::pearson(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
            let r2 = vksim_stats::pearson(&ys, &xs).unwrap();
            prop_assert!((r - r2).abs() < 1e-9);
        }
        Ok(())
    });
}

/// Memory chunking covers the whole byte range with 32 B-aligned chunks.
#[test]
fn chunking_covers_range() {
    check(&(u64_in(0, 1_000_000), u32_in(1, 512)), |&(addr, size)| {
        let chunks = vksim_mem::chunk_addresses(addr, size);
        prop_assert!(!chunks.is_empty());
        for c in &chunks {
            prop_assert_eq!(c % 32, 0);
        }
        prop_assert!(chunks[0] <= addr);
        prop_assert!(*chunks.last().unwrap() + 32 >= addr + size as u64);
        for w in chunks.windows(2) {
            prop_assert_eq!(w[1] - w[0], 32);
        }
        Ok(())
    });
}
