//! Property-based tests for the partitioned memory system: address
//! slicing totality/balance and the FR-FCFS scheduler's starvation bound
//! and FCFS-degeneration, on the in-repo `vksim-testkit` harness
//! (offline, deterministic, replayable via the seed printed on failure).

use vksim_mem::{partition_of, Dram, DramConfig, DramIssue, DramSched, PARTITION_BYTES};
use vksim_testkit::prop::{check, u32_in, u64_in, vec_of};
use vksim_testkit::{prop_assert, prop_assert_eq};

/// Every address maps to exactly one partition (totality), all addresses
/// within one 128 B line map to the same partition, and consecutive lines
/// rotate through all partitions (perfect deterministic balance).
#[test]
fn partition_slicing_is_total_and_line_stable() {
    let strat = (u32_in(1, 8), vec_of(u64_in(0, 1 << 40), 16, 64));
    check(&strat, |(n, addrs)| {
        let n = *n;
        for &addr in addrs {
            let p = partition_of(addr, n);
            prop_assert!(p < n, "partition {} out of range for n={}", p, n);
            // Line stability: every byte of the 128 B line agrees.
            let line = addr / PARTITION_BYTES * PARTITION_BYTES;
            prop_assert_eq!(partition_of(line, n), p);
            prop_assert_eq!(partition_of(line + PARTITION_BYTES - 1, n), p);
            // Rotation: the next line lands on the next partition.
            prop_assert_eq!(partition_of(line + PARTITION_BYTES, n), (p + 1) % n);
        }
        // Any window of n consecutive lines covers each partition once.
        let base = addrs[0] / PARTITION_BYTES * PARTITION_BYTES;
        let mut seen = vec![false; n as usize];
        for i in 0..n as u64 {
            seen[partition_of(base + i * PARTITION_BYTES, n) as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "window missed a partition");
        Ok(())
    });
}

/// A uniform random address stream occupies every partition within ±20%
/// of the uniform share.
#[test]
fn partition_slicing_balances_uniform_streams() {
    // 4096 samples: at n=8 the expected share is 512 with σ ≈ 21, so the
    // ±20% band is ≈ 4.9σ wide — deterministic under the suite seed and
    // comfortably stable under reasonable seed replay.
    let strat = (u32_in(2, 8), vec_of(u64_in(0, 1 << 30), 4096, 4096));
    check(&strat, |(n, addrs)| {
        let n = *n;
        let mut occupancy = vec![0u64; n as usize];
        for &addr in addrs {
            occupancy[partition_of(addr, n) as usize] += 1;
        }
        let expected = addrs.len() as f64 / n as f64;
        for (i, &c) in occupancy.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            prop_assert!(
                dev <= 0.20,
                "partition {} occupancy {} deviates {:.1}% from uniform {}",
                i,
                c,
                dev * 100.0,
                expected
            );
        }
        Ok(())
    });
}

/// Replicates [`Dram`]'s documented channel interleave (256 B).
fn channel_of(addr: u64, channels: u32) -> usize {
    ((addr / 256) % channels as u64) as usize
}

/// FR-FCFS never starves: every request completes within the documented
/// deterministic bound `age_cap + 2 * max_access * (k + 1)` of its
/// arrival, where `k` counts older same-channel requests pending when it
/// arrived.
#[test]
fn fr_fcfs_completes_within_starvation_bound() {
    let strat = (
        u32_in(1, 8),                                      // queue_depth
        u64_in(0, 200),                                    // age_cap
        vec_of((u64_in(0, 1 << 14), u64_in(0, 8)), 4, 48), // (addr, gap)
    );
    check(&strat, |(depth, age_cap, stream)| {
        let config = DramConfig {
            channels: 2,
            banks_per_channel: 4,
            row_bytes: 512,
            sched: DramSched::FrFcfs {
                queue_depth: *depth,
                age_cap: *age_cap,
            },
            ..DramConfig::default()
        };
        let max_access = config.max_access_cycles();
        let mut d = Dram::new(config);

        // Submit everything up front: k for request i is then simply the
        // number of earlier submissions to the same channel.
        let mut now = 0u64;
        let mut meta = Vec::new(); // ticket -> (arrival, k)
        let mut per_channel = [0u64; 2];
        for &(addr, gap) in stream {
            now += gap;
            let ch = channel_of(addr, 2);
            let DramIssue::Queued(ticket) = d.submit(addr, now) else {
                prop_assert!(false, "FR-FCFS config must queue");
                unreachable!()
            };
            meta.push((ticket, now, per_channel[ch]));
            per_channel[ch] += 1;
        }

        let completions = d.run_schedule(u64::MAX);
        prop_assert!(!d.has_queued(), "full-horizon schedule must drain");
        prop_assert_eq!(completions.len(), stream.len());
        for &(ticket, arrival, k) in &meta {
            let done = completions
                .iter()
                .find(|&&(t, _)| t == ticket)
                .map(|&(_, done)| done);
            prop_assert!(done.is_some(), "ticket {} never completed", ticket);
            let bound = arrival + age_cap + 2 * max_access * (k + 1);
            prop_assert!(
                done.unwrap() <= bound,
                "ticket {} done {} exceeds bound {} (arrival {}, k {})",
                ticket,
                done.unwrap(),
                bound,
                arrival,
                k
            );
        }
        Ok(())
    });
}

/// With `age_cap = 0` the FR-FCFS schedule degenerates to FCFS
/// cycle-for-cycle: identical per-request completion times and identical
/// counters, regardless of queue depth and of how the scheduling horizon
/// advances.
#[test]
fn fr_fcfs_age_cap_zero_matches_fcfs_schedule() {
    let strat = (
        u32_in(1, 8),                                      // queue_depth
        vec_of((u64_in(0, 1 << 14), u64_in(0, 8)), 1, 48), // (addr, gap)
    );
    check(&strat, |(depth, stream)| {
        let base = DramConfig {
            channels: 2,
            banks_per_channel: 4,
            row_bytes: 512,
            ..DramConfig::default()
        };

        // Reference: the in-order path services at submit.
        let mut fcfs = Dram::new(DramConfig {
            sched: DramSched::Fcfs,
            ..base.clone()
        });
        let mut now = 0u64;
        let mut expected = Vec::new();
        for &(addr, gap) in stream {
            now += gap;
            match fcfs.submit(addr, now) {
                DramIssue::Done(done) => expected.push(done),
                DramIssue::Queued(_) => {
                    prop_assert!(false, "FCFS never queues");
                }
            }
        }

        // FR-FCFS at cap 0, scheduled incrementally at each arrival and
        // drained at the end (exercises the nondecreasing-horizon safety).
        let mut fr = Dram::new(DramConfig {
            sched: DramSched::FrFcfs {
                queue_depth: *depth,
                age_cap: 0,
            },
            ..base
        });
        let mut now = 0u64;
        let mut got = std::collections::HashMap::new();
        for &(addr, gap) in stream {
            now += gap;
            let DramIssue::Queued(ticket) = fr.submit(addr, now) else {
                prop_assert!(false, "FR-FCFS config must queue");
                unreachable!()
            };
            let _ = ticket;
            for (t, done) in fr.run_schedule(now) {
                got.insert(t, done);
            }
        }
        for (t, done) in fr.run_schedule(u64::MAX) {
            got.insert(t, done);
        }

        prop_assert_eq!(got.len(), expected.len());
        for (i, &want) in expected.iter().enumerate() {
            // Tickets are 1-based in submission order.
            prop_assert_eq!(
                got.get(&(i as u64 + 1)).copied(),
                Some(want),
                "request {} diverged from the FCFS schedule",
                i
            );
        }
        prop_assert_eq!(&fr.stats, &fcfs.stats);
        Ok(())
    });
}
