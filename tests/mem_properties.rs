//! Property-based tests for the partitioned memory system: address
//! slicing totality/balance and the FR-FCFS scheduler's starvation bound
//! and FCFS-degeneration, on the in-repo `vksim-testkit` harness
//! (offline, deterministic, replayable via the seed printed on failure).

use vksim_mem::{
    partition_of, AccessKind, Dram, DramConfig, DramIssue, DramSched, MemRequest, MemSink,
    RequestQueue, SharedMemSystem, SystemConfig, PARTITION_BYTES,
};
use vksim_testkit::prop::{check, u32_in, u64_in, vec_of};
use vksim_testkit::{prop_assert, prop_assert_eq};

/// Every address maps to exactly one partition (totality), all addresses
/// within one 128 B line map to the same partition, and consecutive lines
/// rotate through all partitions (perfect deterministic balance).
#[test]
fn partition_slicing_is_total_and_line_stable() {
    let strat = (u32_in(1, 8), vec_of(u64_in(0, 1 << 40), 16, 64));
    check(&strat, |(n, addrs)| {
        let n = *n;
        for &addr in addrs {
            let p = partition_of(addr, n);
            prop_assert!(p < n, "partition {} out of range for n={}", p, n);
            // Line stability: every byte of the 128 B line agrees.
            let line = addr / PARTITION_BYTES * PARTITION_BYTES;
            prop_assert_eq!(partition_of(line, n), p);
            prop_assert_eq!(partition_of(line + PARTITION_BYTES - 1, n), p);
            // Rotation: the next line lands on the next partition.
            prop_assert_eq!(partition_of(line + PARTITION_BYTES, n), (p + 1) % n);
        }
        // Any window of n consecutive lines covers each partition once.
        let base = addrs[0] / PARTITION_BYTES * PARTITION_BYTES;
        let mut seen = vec![false; n as usize];
        for i in 0..n as u64 {
            seen[partition_of(base + i * PARTITION_BYTES, n) as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "window missed a partition");
        Ok(())
    });
}

/// A uniform random address stream occupies every partition within ±20%
/// of the uniform share.
#[test]
fn partition_slicing_balances_uniform_streams() {
    // 4096 samples: at n=8 the expected share is 512 with σ ≈ 21, so the
    // ±20% band is ≈ 4.9σ wide — deterministic under the suite seed and
    // comfortably stable under reasonable seed replay.
    let strat = (u32_in(2, 8), vec_of(u64_in(0, 1 << 30), 4096, 4096));
    check(&strat, |(n, addrs)| {
        let n = *n;
        let mut occupancy = vec![0u64; n as usize];
        for &addr in addrs {
            occupancy[partition_of(addr, n) as usize] += 1;
        }
        let expected = addrs.len() as f64 / n as f64;
        for (i, &c) in occupancy.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            prop_assert!(
                dev <= 0.20,
                "partition {} occupancy {} deviates {:.1}% from uniform {}",
                i,
                c,
                dev * 100.0,
                expected
            );
        }
        Ok(())
    });
}

/// Drives a load stream through the SM-side [`RequestQueue`] into a
/// backend, one drain per cycle, collecting completions until the backend
/// is idle and the queue drained (or `horizon` cycles pass). Returns
/// `(completions, cycles_used)`; asserts the ingress-occupancy bound every
/// cycle when `depth` is finite.
fn drive_backpressured(
    sys: &mut SharedMemSystem,
    queue: &mut RequestQueue,
    depth: u32,
    horizon: u64,
) -> (Vec<(u64, u64)>, u64) {
    let mut completions = Vec::new();
    let mut cycle = 0u64;
    while cycle < horizon {
        cycle += 1;
        completions.extend(sys.advance_to(cycle));
        queue.drain_into(sys);
        if depth > 0 {
            for p in 0..sys.num_partitions() {
                assert!(
                    sys.ingress_occupancy(p) <= depth,
                    "partition {p} occupancy {} exceeds depth {depth} at cycle {cycle}",
                    sys.ingress_occupancy(p)
                );
            }
        }
        if queue.is_empty() && sys.is_idle() {
            break;
        }
    }
    // Late completions already scheduled past `cycle`.
    completions.extend(sys.advance_to(u64::MAX));
    (completions, cycle)
}

/// Bounded ingress is really bounded and never deadlocks: under a random
/// load stream pushed through a depth-1..4 interconnect, per-partition
/// occupancy never exceeds the configured depth, every request completes,
/// and at least one refusal is observed when the stream is long enough to
/// overrun the bound.
#[test]
fn bounded_ingress_occupancy_is_bounded_and_deadlock_free() {
    let strat = (
        u32_in(1, 4),                       // icnt_queue_depth
        u32_in(1, 3),                       // num_partitions
        vec_of(u64_in(0, 1 << 16), 16, 64), // chunk addresses
    );
    check(&strat, |(depth, parts, addrs)| {
        let config = SystemConfig {
            num_partitions: *parts,
            icnt_queue_depth: *depth,
            icnt_return_credits: 2,
            ..SystemConfig::default()
        };
        let mut sys = SharedMemSystem::new(config);
        let mut queue = RequestQueue::new();
        for (i, &addr) in addrs.iter().enumerate() {
            queue.submit(
                MemRequest {
                    id: i as u64 + 1,
                    addr: addr & !31,
                    kind: AccessKind::ShaderLoad,
                    is_store: false,
                },
                0,
            );
        }
        let (completions, cycles) = drive_backpressured(&mut sys, &mut queue, *depth, 1_000_000);
        prop_assert!(
            queue.is_empty(),
            "queue still holds {} requests after {} cycles: backpressure deadlock",
            queue.len(),
            cycles
        );
        prop_assert_eq!(completions.len(), addrs.len());
        let mut ids: Vec<u64> = completions.iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), addrs.len(), "every load completed exactly once");
        // Acceptance counting: accepted offers == requests, and refusals
        // (if any) were counted separately rather than inflating traffic.
        prop_assert_eq!(sys.stats.get("icnt.to_l2"), addrs.len() as u64);
        Ok(())
    });
}

/// `icnt_queue_depth = 0` (unbounded, the historical model) and a finite
/// depth too large to ever fill produce byte-identical completion
/// schedules and statistics: the bounded machinery is pure overhead-free
/// bookkeeping until a queue actually fills.
#[test]
fn unbounded_and_unreachable_depth_schedules_match() {
    let strat = (
        u32_in(1, 4),                      // num_partitions
        vec_of(u64_in(0, 1 << 16), 8, 48), // chunk addresses
    );
    check(&strat, |(parts, addrs)| {
        let run = |depth: u32| {
            let config = SystemConfig {
                num_partitions: *parts,
                icnt_queue_depth: depth,
                ..SystemConfig::default()
            };
            let mut sys = SharedMemSystem::new(config);
            let mut queue = RequestQueue::new();
            for (i, &addr) in addrs.iter().enumerate() {
                queue.submit(
                    MemRequest {
                        id: i as u64 + 1,
                        addr: addr & !31,
                        kind: AccessKind::ShaderLoad,
                        is_store: false,
                    },
                    i as u64, // staggered submit times
                );
            }
            let (completions, _) = drive_backpressured(&mut sys, &mut queue, depth, 1_000_000);
            (
                completions,
                sys.stats.clone(),
                sys.l2_stats(),
                sys.dram_stats(),
            )
        };
        let unbounded = run(0);
        let huge = run(1 << 20);
        prop_assert_eq!(&unbounded.0, &huge.0, "completion schedules diverged");
        prop_assert_eq!(&unbounded.1, &huge.1, "icnt stats diverged");
        prop_assert_eq!(&unbounded.2, &huge.2, "L2 stats diverged");
        prop_assert_eq!(&unbounded.3, &huge.3, "DRAM stats diverged");
        Ok(())
    });
}

/// A depth-1 interconnect in front of a single partition must refuse
/// offers while the lone slot is occupied — the head-of-line blocking the
/// SM issue stage keys its stall accounting from.
#[test]
fn depth_one_ingress_refuses_concurrent_offers() {
    let config = SystemConfig {
        num_partitions: 1,
        icnt_queue_depth: 1,
        ..SystemConfig::default()
    };
    let mut sys = SharedMemSystem::new(config);
    let req = |id: u64, addr: u64| MemRequest {
        id,
        addr,
        kind: AccessKind::ShaderLoad,
        is_store: false,
    };
    assert!(sys.try_submit(req(1, 0), 0), "empty queue accepts");
    assert!(!sys.try_submit(req(2, 32), 0), "full queue refuses");
    assert_eq!(sys.stats.get("icnt.refused"), 1);
    assert_eq!(sys.stats.get("icnt.to_l2"), 1, "refusals are not traffic");
    // Drain the slot; the refused request must be accepted on re-offer.
    sys.advance_to(100_000);
    assert!(sys.try_submit(req(2, 32), 100_000), "freed queue accepts");
}

/// Replicates [`Dram`]'s documented channel interleave (256 B).
fn channel_of(addr: u64, channels: u32) -> usize {
    ((addr / 256) % channels as u64) as usize
}

/// FR-FCFS never starves: every request completes within the documented
/// deterministic bound `age_cap + 2 * max_access * (k + 1)` of its
/// arrival, where `k` counts older same-channel requests pending when it
/// arrived.
#[test]
fn fr_fcfs_completes_within_starvation_bound() {
    let strat = (
        u32_in(1, 8),                                      // queue_depth
        u64_in(0, 200),                                    // age_cap
        vec_of((u64_in(0, 1 << 14), u64_in(0, 8)), 4, 48), // (addr, gap)
    );
    check(&strat, |(depth, age_cap, stream)| {
        let config = DramConfig {
            channels: 2,
            banks_per_channel: 4,
            row_bytes: 512,
            sched: DramSched::FrFcfs {
                queue_depth: *depth,
                age_cap: *age_cap,
            },
            ..DramConfig::default()
        };
        let max_access = config.max_access_cycles();
        let mut d = Dram::new(config);

        // Submit everything up front: k for request i is then simply the
        // number of earlier submissions to the same channel.
        let mut now = 0u64;
        let mut meta = Vec::new(); // ticket -> (arrival, k)
        let mut per_channel = [0u64; 2];
        for &(addr, gap) in stream {
            now += gap;
            let ch = channel_of(addr, 2);
            let DramIssue::Queued(ticket) = d.submit(addr, now) else {
                prop_assert!(false, "FR-FCFS config must queue");
                unreachable!()
            };
            meta.push((ticket, now, per_channel[ch]));
            per_channel[ch] += 1;
        }

        let completions = d.run_schedule(u64::MAX);
        prop_assert!(!d.has_queued(), "full-horizon schedule must drain");
        prop_assert_eq!(completions.len(), stream.len());
        for &(ticket, arrival, k) in &meta {
            let done = completions
                .iter()
                .find(|&&(t, _)| t == ticket)
                .map(|&(_, done)| done);
            prop_assert!(done.is_some(), "ticket {} never completed", ticket);
            let bound = arrival + age_cap + 2 * max_access * (k + 1);
            prop_assert!(
                done.unwrap() <= bound,
                "ticket {} done {} exceeds bound {} (arrival {}, k {})",
                ticket,
                done.unwrap(),
                bound,
                arrival,
                k
            );
        }
        Ok(())
    });
}

/// With `age_cap = 0` the FR-FCFS schedule degenerates to FCFS
/// cycle-for-cycle: identical per-request completion times and identical
/// counters, regardless of queue depth and of how the scheduling horizon
/// advances.
#[test]
fn fr_fcfs_age_cap_zero_matches_fcfs_schedule() {
    let strat = (
        u32_in(1, 8),                                      // queue_depth
        vec_of((u64_in(0, 1 << 14), u64_in(0, 8)), 1, 48), // (addr, gap)
    );
    check(&strat, |(depth, stream)| {
        let base = DramConfig {
            channels: 2,
            banks_per_channel: 4,
            row_bytes: 512,
            ..DramConfig::default()
        };

        // Reference: the in-order path services at submit.
        let mut fcfs = Dram::new(DramConfig {
            sched: DramSched::Fcfs,
            ..base.clone()
        });
        let mut now = 0u64;
        let mut expected = Vec::new();
        for &(addr, gap) in stream {
            now += gap;
            match fcfs.submit(addr, now) {
                DramIssue::Done(done) => expected.push(done),
                DramIssue::Queued(_) => {
                    prop_assert!(false, "FCFS never queues");
                }
            }
        }

        // FR-FCFS at cap 0, scheduled incrementally at each arrival and
        // drained at the end (exercises the nondecreasing-horizon safety).
        let mut fr = Dram::new(DramConfig {
            sched: DramSched::FrFcfs {
                queue_depth: *depth,
                age_cap: 0,
            },
            ..base
        });
        let mut now = 0u64;
        let mut got = std::collections::HashMap::new();
        for &(addr, gap) in stream {
            now += gap;
            let DramIssue::Queued(ticket) = fr.submit(addr, now) else {
                prop_assert!(false, "FR-FCFS config must queue");
                unreachable!()
            };
            let _ = ticket;
            for (t, done) in fr.run_schedule(now) {
                got.insert(t, done);
            }
        }
        for (t, done) in fr.run_schedule(u64::MAX) {
            got.insert(t, done);
        }

        prop_assert_eq!(got.len(), expected.len());
        for (i, &want) in expected.iter().enumerate() {
            // Tickets are 1-based in submission order.
            prop_assert_eq!(
                got.get(&(i as u64 + 1)).copied(),
                Some(want),
                "request {} diverged from the FCFS schedule",
                i
            );
        }
        prop_assert_eq!(&fr.stats, &fcfs.stats);
        Ok(())
    });
}
