//! Fig. 2-style validation: the simulator's rendered images against the
//! reference renderer (the NVIDIA-GPU stand-in).
//!
//! The paper reports only 0.3% of Sponza pixels differing between
//! Vulkan-Sim and an NVIDIA GPU. Here the shader DSL programs executed by
//! the functional simulator must reproduce the reference CPU renderer's
//! images nearly pixel-exactly (same formulas, same traversal).

use vksim_core::validate::{pixel_diff_fraction, read_framebuffer};
use vksim_core::{SimConfig, Simulator};
use vksim_scenes::{build, reference, Scale, WorkloadKind};

fn rendered_vs_reference(kind: WorkloadKind) -> (f64, usize) {
    let w = build(kind, Scale::Test);
    let mut sim = Simulator::new(SimConfig::test_small());
    let (mem, _) = sim.run_functional(&w.device, &w.cmd).expect("healthy run");
    let sim_img = read_framebuffer(&mem, w.fb_addr, (w.width * w.height) as usize);
    let ref_img = reference::render(&w);
    let diff = pixel_diff_fraction(&sim_img, &ref_img, 1).expect("same dimensions");
    (diff, sim_img.len())
}

#[test]
fn tri_image_matches_reference() {
    let (diff, n) = rendered_vs_reference(WorkloadKind::Tri);
    assert!(n > 0);
    assert!(
        diff <= 0.003,
        "TRI pixel diff {diff:.4} exceeds the paper's 0.3%"
    );
}

#[test]
fn ref_image_matches_reference() {
    let (diff, _) = rendered_vs_reference(WorkloadKind::Ref);
    assert!(diff <= 0.01, "REF pixel diff {diff:.4}");
}

#[test]
fn ext_image_matches_reference() {
    let (diff, _) = rendered_vs_reference(WorkloadKind::Ext);
    assert!(diff <= 0.01, "EXT pixel diff {diff:.4}");
}

#[test]
fn images_are_not_trivially_uniform() {
    let w = build(WorkloadKind::Tri, Scale::Test);
    let mut sim = Simulator::new(SimConfig::test_small());
    let (mem, _) = sim.run_functional(&w.device, &w.cmd).expect("healthy run");
    let img = read_framebuffer(&mem, w.fb_addr, (w.width * w.height) as usize);
    let distinct: std::collections::HashSet<u32> = img.iter().copied().collect();
    assert!(
        distinct.len() > 4,
        "expected a real image, got {} colors",
        distinct.len()
    );
}

#[test]
fn rtv6_renders_spheres_and_cubes_functionally() {
    // No reference for path tracers; check structural properties: the
    // intersection shaders must commit procedural hits (non-sky pixels).
    let w = build(WorkloadKind::Rtv6, Scale::Test);
    let mut sim = Simulator::new(SimConfig::test_small());
    let (mem, stats) = sim.run_functional(&w.device, &w.cmd).expect("healthy run");
    assert!(
        stats.procedural_hits > 0,
        "procedural leaves must be visited"
    );
    let img = read_framebuffer(&mem, w.fb_addr, (w.width * w.height) as usize);
    let distinct: std::collections::HashSet<u32> = img.iter().copied().collect();
    assert!(
        distinct.len() > 8,
        "geometry must be visible: {} colors",
        distinct.len()
    );
}

#[test]
fn rtv5_path_tracer_bounces() {
    let w = build(WorkloadKind::Rtv5, Scale::Test);
    let mut sim = Simulator::new(SimConfig::test_small());
    let (_, stats) = sim.run_functional(&w.device, &w.cmd).expect("healthy run");
    // Path tracing: more rays than pixels (bounces).
    assert!(
        stats.rays as u32 > w.width * w.height,
        "bounced rays expected: {} rays for {} pixels",
        stats.rays,
        w.width * w.height
    );
}
