//! Golden-counter regression suite: the drift gate every perf PR diffs
//! against.
//!
//! Each test runs the full cycle-level pipeline on a small deterministic
//! scene and compares a flattened snapshot of the key `vksim-stats`
//! counters (cycles, RT-unit traffic, cache hits/misses by class,
//! warp-occupancy integrals, functional-traversal totals) **exactly**
//! against a checked-in JSON golden under `tests/goldens/`.
//!
//! * Drift fails loudly with a per-counter diff.
//! * After an intentional modeling change, regenerate with
//!   `VKSIM_BLESS=1 cargo test --offline -p vksim-bench --test golden_counters`
//!   and commit the golden diff so reviewers see exactly what moved.

use std::collections::BTreeMap;
use std::path::PathBuf;
use vksim_bench::run_workload;
use vksim_core::{RunReport, SimConfig, Simulator};
use vksim_scenes::{build, Scale, WorkloadKind};
use vksim_testkit::assert_matches_golden;

fn golden_path(name: &str) -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; goldens live at the repo root so
    // they sit next to the integration tests that guard them.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/goldens")
        .join(format!("{name}.json"))
}

/// Flattens a run report into the golden counter map. Only integer-exact
/// quantities are captured: floating-point summary statistics (SIMT
/// efficiency, DRAM utilization) are derived from these counters and would
/// only add platform-rounding noise to the gate.
fn snapshot(report: &RunReport) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    let gpu = &report.gpu;
    m.insert("gpu.cycles".into(), gpu.cycles);
    m.insert("gpu.issued_insts".into(), gpu.issued_insts);
    m.insert("gpu.rt_busy_cycles".into(), gpu.rt_busy_cycles);
    m.insert(
        "gpu.rt_resident_warp_cycles".into(),
        gpu.rt_resident_warp_cycles,
    );
    m.insert("gpu.rt_ops".into(), gpu.rt_ops);
    m.insert("gpu.rt_chunks_fetched".into(), gpu.rt_chunks_fetched);
    m.insert(
        "gpu.rt_warp_latency.count".into(),
        gpu.rt_warp_latency.count(),
    );
    m.insert(
        "gpu.rt_occupancy.events".into(),
        gpu.rt_occupancy.iter().map(|t| t.len() as u64).sum(),
    );
    for (k, v) in gpu.counters.iter() {
        m.insert(format!("counter.{k}"), v);
    }
    for (prefix, bag) in [
        ("l1", &gpu.l1_stats),
        ("rtc", &gpu.rtc_stats),
        ("l2", &gpu.l2_stats),
        ("dram", &gpu.dram_stats),
    ] {
        for (k, v) in bag.iter() {
            m.insert(format!("{prefix}.{k}"), v);
        }
    }
    let rt = &report.runtime;
    m.insert("runtime.rays".into(), rt.rays);
    m.insert("runtime.nodes_visited".into(), rt.nodes_visited);
    m.insert("runtime.box_tests".into(), rt.box_tests);
    m.insert("runtime.triangle_tests".into(), rt.triangle_tests);
    m.insert("runtime.transforms".into(), rt.transforms);
    m.insert("runtime.procedural_hits".into(), rt.procedural_hits);
    m.insert("runtime.triangle_hits".into(), rt.triangle_hits);
    m.insert("runtime.misses".into(), rt.misses);
    m.insert("runtime.max_stack_depth".into(), rt.max_stack_depth as u64);
    m.insert("runtime.spill_stores".into(), rt.spill_stores);
    m.insert("runtime.spill_loads".into(), rt.spill_loads);
    m
}

/// Runs a workload with cycle accounting AND ray-traversal analytics
/// enabled and checks every gate at once: the counter snapshot must match
/// its golden **byte-for-byte** (proving both observers are purely
/// observational — the goldens were blessed without them), the accounting
/// breakdown must conserve (`Σ categories == num_sms × cycles`), and the
/// traversal analytics must conserve (heatmap visits == Σ per-ray node
/// counts, per-ray box tests == RT-unit box ops).
fn check_workload_with(kind: WorkloadKind, golden: &str, config: SimConfig) {
    let (_, report) = run_workload(
        kind,
        Scale::Test,
        config.with_accounting(true).with_rt_analytics(true),
    );
    let prof = report.prof.as_ref().expect("accounting enabled");
    assert!(
        prof.conservation_holds(),
        "cycle-accounting conservation violated on {golden}: {prof:?}"
    );
    assert_eq!(prof.cycles, report.gpu.cycles, "{golden}");
    let rt = report.rt.as_ref().expect("rt analytics enabled");
    assert!(
        rt.conservation_holds(),
        "rt-analytics conservation violated on {golden}"
    );
    assert_matches_golden(golden_path(golden), &snapshot(&report));
}

fn check_workload(kind: WorkloadKind, golden: &str) {
    check_workload_with(kind, golden, SimConfig::test_small());
}

#[test]
fn golden_tri() {
    check_workload(WorkloadKind::Tri, "tri");
}

#[test]
fn golden_ref() {
    check_workload(WorkloadKind::Ref, "ref");
}

#[test]
fn golden_ext() {
    check_workload(WorkloadKind::Ext, "ext");
}

#[test]
fn golden_rtv5() {
    check_workload(WorkloadKind::Rtv5, "rtv5");
}

#[test]
fn golden_rtv6() {
    check_workload(WorkloadKind::Rtv6, "rtv6");
}

/// The paper's mobile configuration (8 SMs, 32 K registers, mobile DRAM)
/// on the TRI scene — guards the Table III variant the FCC case study
/// runs on, not just the desktop baseline.
#[test]
fn golden_tri_mobile() {
    check_workload_with(WorkloadKind::Tri, "tri_mobile", SimConfig::mobile());
}

/// The paper-scale configuration (48 SMs, 8 memory partitions, FR-FCFS
/// DRAM scheduling) on the TRI scene — guards the partitioned memory
/// backend end to end, including the per-partition `l2.p{i}.*` /
/// `dram.p{i}.*` counters and the merged totals they roll up into.
#[test]
fn golden_tri_paper() {
    check_workload_with(WorkloadKind::Tri, "tri_paper", SimConfig::paper());
}

/// The full cycle-accounting breakdown of the paper-scale TRI run, pinned
/// key-by-key: per-SM and merged category counts, occupancy integrals and
/// issue totals. Any attribution change — a new stall source, a precedence
/// reorder, an engine-scheduling drift — shows up as a per-key diff here.
/// Regenerate with `VKSIM_BLESS=1` after intentional changes.
#[test]
fn golden_tri_paper_prof() {
    let (_, report) = run_workload(
        WorkloadKind::Tri,
        Scale::Test,
        SimConfig::paper().with_accounting(true),
    );
    let prof = report.prof.as_ref().expect("accounting enabled");
    assert!(prof.conservation_holds());
    assert_matches_golden(golden_path("tri_paper_prof"), &prof.flat_map());
}

/// The breakdown must be engine-invariant: threads = 1 and threads = 4
/// attribute every cycle identically, byte-for-byte in the flat JSON.
#[test]
fn prof_breakdown_is_thread_count_invariant() {
    let run = |threads| {
        let config = SimConfig::paper()
            .with_accounting(true)
            .with_threads(threads);
        let (_, report) = run_workload(WorkloadKind::Tri, Scale::Test, config);
        report.prof.expect("accounting enabled").flat_json()
    };
    assert_eq!(
        run(1),
        run(4),
        "prof breakdown must be thread-count invariant"
    );
}

/// The full ray-traversal characterization of the paper-scale TRI run,
/// pinned key-by-key: per-node heatmap totals, per-ray histograms,
/// depth profile, warp-coherence tallies and per-SM RT-unit roll-ups.
/// Any traversal-order, BVH-layout or attribution change shows up as a
/// per-key diff here. Regenerate with `VKSIM_BLESS=1` after intentional
/// changes.
#[test]
fn golden_tri_paper_rt() {
    let (_, report) = run_workload(
        WorkloadKind::Tri,
        Scale::Test,
        SimConfig::paper().with_rt_analytics(true),
    );
    let rt = report.rt.as_ref().expect("analytics enabled");
    assert!(rt.conservation_holds());
    assert_matches_golden(golden_path("tri_paper_rt"), &rt.flat_map());
}

/// The paper-scale configuration behind a *bounded* interconnect: finite
/// per-partition ingress queues and return credits, so SMs stall on
/// backpressure (`sm.icnt_stall_cycles`) and refused offers are counted
/// (`icnt.refused`). Pins the backpressured schedule so interconnect
/// changes cannot drift silently.
#[test]
fn golden_tri_paper_icnt() {
    let config = SimConfig::paper()
        .with_icnt_queue_depth(4)
        .with_icnt_return_credits(2);
    check_workload_with(WorkloadKind::Tri, "tri_paper_icnt", config);
}

/// Backpressure must not break the determinism contract: with a small
/// finite interconnect depth, threads = 1 and threads = 4 must agree on
/// every counter — including the stall and refusal counters themselves.
#[test]
fn icnt_backpressure_threads_do_not_change_counters() {
    let config = || {
        SimConfig::paper()
            .with_icnt_queue_depth(4)
            .with_icnt_return_credits(2)
    };
    let (_, a) = run_workload(WorkloadKind::Tri, Scale::Test, config().with_threads(1));
    let (_, b) = run_workload(WorkloadKind::Tri, Scale::Test, config().with_threads(4));
    assert_eq!(
        snapshot(&a),
        snapshot(&b),
        "bounded interconnect must be thread-count invariant"
    );
}

/// The determinism contract must hold on the partitioned FR-FCFS path
/// too: the paper config at threads = 1 and threads = 4 must agree on
/// every counter, per-partition keys included.
#[test]
fn paper_threads_do_not_change_counters() {
    let (_, a) = run_workload(
        WorkloadKind::Tri,
        Scale::Test,
        SimConfig::paper().with_threads(1),
    );
    let (_, b) = run_workload(
        WorkloadKind::Tri,
        Scale::Test,
        SimConfig::paper().with_threads(4),
    );
    assert_eq!(
        snapshot(&a),
        snapshot(&b),
        "paper config must be thread-count invariant"
    );
}

/// The FCC case study (§VI-E): RTV6 with function-call coalescing enabled.
/// Locks the coalescing-table loads and reordered intersection-shader
/// lowering the case study measures, so tracing hooks (and future PRs)
/// cannot silently shift the FCC path.
#[test]
fn golden_rtv6_fcc() {
    let mut w = build(WorkloadKind::Rtv6, Scale::Test);
    let fcc_cmd = w.with_fcc(true);
    let report = Simulator::new(
        SimConfig::test_small()
            .with_accounting(true)
            .with_rt_analytics(true),
    )
    .run(&w.device, &fcc_cmd)
    .expect("healthy run");
    let prof = report.prof.as_ref().expect("accounting enabled");
    assert!(prof.conservation_holds(), "{prof:?}");
    assert!(report
        .rt
        .as_ref()
        .expect("analytics on")
        .conservation_holds());
    assert_matches_golden(golden_path("rtv6_fcc"), &snapshot(&report));
}

/// The ITS case study (§VI-F): REF under independent thread scheduling.
/// The multipath SIMT engine takes different divergence/reconvergence
/// decisions than the stack engine, so it gets its own golden.
#[test]
fn golden_ref_its() {
    let w = build(WorkloadKind::Ref, Scale::Test);
    let report = Simulator::new(
        SimConfig::test_small()
            .with_its(true)
            .with_accounting(true)
            .with_rt_analytics(true),
    )
    .run(&w.device, &w.cmd)
    .expect("healthy run");
    let prof = report.prof.as_ref().expect("accounting enabled");
    assert!(prof.conservation_holds(), "{prof:?}");
    assert!(report
        .rt
        .as_ref()
        .expect("analytics on")
        .conservation_holds());
    assert_matches_golden(golden_path("ref_its"), &snapshot(&report));
}

/// The two-phase cycle engine's determinism contract: any thread count must
/// produce bit-identical counters. Runs the TRI workload on the serial
/// reference path (threads = 1) and the parallel path (threads = 4) and
/// demands byte-equal snapshots — including sequence-sensitive memory-system
/// statistics.
#[test]
fn threads_do_not_change_counters() {
    let serial = SimConfig::test_small().with_threads(1);
    let parallel = SimConfig::test_small().with_threads(4);
    let (_, a) = run_workload(WorkloadKind::Tri, Scale::Test, serial);
    let (_, b) = run_workload(WorkloadKind::Tri, Scale::Test, parallel);
    assert_eq!(
        snapshot(&a),
        snapshot(&b),
        "threads=1 and threads=4 must agree on every counter"
    );
}

/// The simulator itself must be run-to-run deterministic, otherwise the
/// goldens above would flake rather than gate. Two back-to-back runs must
/// produce byte-identical snapshots.
#[test]
fn simulation_is_deterministic() {
    let (_, a) = run_workload(WorkloadKind::Tri, Scale::Test, SimConfig::test_small());
    let (_, b) = run_workload(WorkloadKind::Tri, Scale::Test, SimConfig::test_small());
    assert_eq!(
        snapshot(&a),
        snapshot(&b),
        "simulator must be deterministic"
    );
}
