//! The paper's two case studies (§IV, §VI-E/F): function call coalescing
//! and independent thread scheduling.

use vksim_core::{SimConfig, Simulator};
use vksim_scenes::{build, Scale, WorkloadKind};

#[test]
fn fcc_changes_lowering_and_adds_rt_loads() {
    // §VI-E: FCC improves SIMT efficiency but adds ~11% more RT-unit memory
    // loads, which makes it a net loss on the memory-bound RTV6.
    let mut w = build(WorkloadKind::Rtv6, Scale::Test);
    let base_cmd = w.with_fcc(false);
    let fcc_cmd = w.with_fcc(true);

    let mut sim = Simulator::new(SimConfig::test_small());
    let base = sim.run(&w.device, &base_cmd).expect("healthy run");
    let fcc = sim.run(&w.device, &fcc_cmd).expect("healthy run");

    let base_loads = base.gpu.counters.get("mem.requests");
    let fcc_loads = fcc.gpu.counters.get("mem.requests");
    assert!(
        fcc_loads > base_loads,
        "FCC must add coalescing-table loads: {fcc_loads} vs {base_loads}"
    );
}

#[test]
fn fcc_image_matches_baseline_image() {
    // FCC only reorders intersection-shader execution; Vulkan defines no
    // order, and our shaders commute, so images must match.
    let mut w = build(WorkloadKind::Rtv6, Scale::Test);
    let base_cmd = w.with_fcc(false);
    let fcc_cmd = w.with_fcc(true);
    let mut sim = Simulator::new(SimConfig::test_small());
    let (base_mem, _) = sim
        .run_functional(&w.device, &base_cmd)
        .expect("healthy run");
    let (fcc_mem, _) = sim
        .run_functional(&w.device, &fcc_cmd)
        .expect("healthy run");
    let n = (w.width * w.height) as usize;
    for i in 0..n {
        assert_eq!(
            base_mem.read_u32(w.fb_addr + i as u64 * 4),
            fcc_mem.read_u32(w.fb_addr + i as u64 * 4),
            "pixel {i}"
        );
    }
}

#[test]
fn its_runs_divergent_workloads_and_matches_images() {
    // §VI-F: ITS changes scheduling, never results.
    let w = build(WorkloadKind::Ref, Scale::Test);
    let stack = Simulator::new(SimConfig::test_small())
        .run(&w.device, &w.cmd)
        .expect("healthy run");
    let its = Simulator::new(SimConfig::test_small().with_its(true))
        .run(&w.device, &w.cmd)
        .expect("healthy run");
    let n = (w.width * w.height) as usize;
    for i in 0..n {
        assert_eq!(
            stack.memory.read_u32(w.fb_addr + i as u64 * 4),
            its.memory.read_u32(w.fb_addr + i as u64 * 4),
            "pixel {i}"
        );
    }
    // ITS speedups are small in the paper (<= a few %); sanity-bound the
    // ratio rather than asserting a direction.
    let ratio = its.gpu.cycles as f64 / stack.gpu.cycles as f64;
    assert!(
        ratio > 0.5 && ratio < 2.0,
        "ITS/stack cycle ratio {ratio:.2}"
    );
}

#[test]
fn divergence_exists_in_secondary_ray_workloads() {
    // §VI-B: EXT/RTV* show warp divergence from incoherent secondary rays.
    let rf = build(WorkloadKind::Ref, Scale::Test);
    let ref_r = Simulator::new(SimConfig::test_small())
        .run(&rf.device, &rf.cmd)
        .expect("healthy run");
    assert!(
        ref_r.gpu.counters.get("divergent_branches") > 0,
        "REF (shadow/mirror) must show branch divergence"
    );
    assert!(
        ref_r.gpu.simt_efficiency < 1.0,
        "divergence must cost REF some SIMT efficiency ({:.3})",
        ref_r.gpu.simt_efficiency
    );
}

#[test]
fn rt_unit_simt_efficiency_below_core_efficiency() {
    // §VI-B: RT-unit SIMT efficiency is low (35% average) because early
    // finishers idle while tail threads traverse.
    let w = build(WorkloadKind::Ref, Scale::Test);
    let r = Simulator::new(SimConfig::test_small())
        .run(&w.device, &w.cmd)
        .expect("healthy run");
    assert!(r.gpu.rt_simt_efficiency > 0.0);
    assert!(
        r.gpu.rt_simt_efficiency <= 1.0,
        "rt simt eff {}",
        r.gpu.rt_simt_efficiency
    );
}
